// Package experiments regenerates every table and figure of the
// paper's evaluation (DESIGN.md Section 4): Table I (taxonomy
// comparison), Table II (API usage), the per-source precision numbers,
// predicate discovery, the neural-generation ablation, QA coverage and
// the verification ablation. Both cmd/experiments and the root
// benchmarks drive this package.
package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"

	"cnprobase/internal/api"
	"cnprobase/internal/baselines"
	"cnprobase/internal/copynet"
	"cnprobase/internal/core"
	"cnprobase/internal/eval"
	"cnprobase/internal/extract"
	"cnprobase/internal/qa"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
)

// Suite holds one world + one CN-Probase build, reused across
// experiments.
type Suite struct {
	World  *synth.World
	Result *core.Result
	Oracle *synth.Oracle
	Opts   core.Options
}

// NewSuite generates a world with `entities` entities and builds
// CN-Probase over it.
func NewSuite(entities int, opts core.Options) (*Suite, error) {
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		return nil, err
	}
	return &Suite{World: w, Result: res, Oracle: w.Oracle(), Opts: opts}, nil
}

// sampleSize is the paper's manual-labeling sample size.
const sampleSize = 2000

// Table1 reproduces Table I: the four taxonomies side by side.
func (s *Suite) Table1() (string, []eval.TableRow) {
	wiki := baselines.BuildWikiTaxonomy(s.World.Corpus(), baselines.DefaultWikiTaxonomyConfig())
	big := baselines.BuildBigcilin(s.World.Corpus(), baselines.DefaultBigcilinConfig())
	tran, _ := baselines.BuildProbaseTran(s.World, baselines.DefaultProbaseTranConfig())
	rows := []eval.TableRow{
		eval.RowFor("Chinese WikiTaxonomy", wiki, s.Oracle, sampleSize, 1),
		eval.RowFor("Bigcilin", big, s.Oracle, sampleSize, 1),
		eval.RowFor("Probase-Tran", tran, s.Oracle, sampleSize, 1),
		eval.RowFor("CN-Probase", s.Result.Taxonomy, s.Oracle, sampleSize, 1),
	}
	return eval.FormatTable1(rows), rows
}

// Table2 reproduces Table II by serving the taxonomy over HTTP and
// running the simulated six-month workload mix against it.
func (s *Suite) Table2(calls int) (string, api.Stats, error) {
	srv := api.NewServer(s.Result.Taxonomy, s.Result.Mentions)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cfg := api.DefaultWorkloadConfig()
	if calls > 0 {
		cfg.Calls = calls
	}
	if _, err := api.RunWorkload(api.NewClient(ts.URL), s.Result.Taxonomy, s.Result.Mentions, cfg); err != nil {
		return "", api.Stats{}, err
	}
	got := srv.Counters()
	return api.FormatTable2(got), got, nil
}

// SourceRow is one per-source precision row (E3/E4).
type SourceRow struct {
	Source             taxonomy.Source
	Generated, Kept    int
	PrecisionGenerated float64
	PrecisionKept      float64
}

// PerSource reproduces the in-text per-source numbers: bracket ≈96.2%
// (E3), tag ≈97.4% after verification (E4).
func (s *Suite) PerSource() (string, []SourceRow) {
	srcs := []taxonomy.Source{taxonomy.SourceBracket, taxonomy.SourceAbstract, taxonomy.SourceInfobox, taxonomy.SourceTag}
	var rows []SourceRow
	for _, src := range srcs {
		gen := pairsOf(s.Result.Candidates, src)
		kept := pairsOf(s.Result.Kept, src)
		rows = append(rows, SourceRow{
			Source:             src,
			Generated:          len(gen),
			Kept:               len(kept),
			PrecisionGenerated: eval.SamplePrecision(gen, s.Oracle, sampleSize, 1).Precision(),
			PrecisionKept:      eval.SamplePrecision(kept, s.Oracle, sampleSize, 1).Precision(),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %16s %12s\n", "source", "generated", "kept", "prec(generated)", "prec(kept)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %15.1f%% %11.1f%%\n",
			r.Source, r.Generated, r.Kept, r.PrecisionGenerated*100, r.PrecisionKept*100)
	}
	return b.String(), rows
}

func pairsOf(cands []extract.Candidate, src taxonomy.Source) []eval.Pair {
	var out []eval.Pair
	for _, c := range cands {
		if src == 0 || c.Source&src != 0 {
			out = append(out, eval.Pair{Hypo: c.Hypo, Hyper: c.Hyper})
		}
	}
	return out
}

// Predicates reproduces E6: the discovered candidate predicates and the
// curated selection (paper: 341 candidates → 12 curated).
func (s *Suite) Predicates() (string, []extract.PredicateStat, []string) {
	cands := s.Result.Report.PredicateCandidates
	selected := s.Result.Report.SelectedPredicates
	var b strings.Builder
	fmt.Fprintf(&b, "candidate predicates: %d, curated: %d\n", len(cands), len(selected))
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "predicate", "total", "aligned", "score")
	for _, c := range cands {
		mark := " "
		for _, sel := range selected {
			if sel == c.Predicate {
				mark = "*"
			}
		}
		fmt.Fprintf(&b, "%-12s %8d %8d %7.2f%s\n", c.Predicate, c.Total, c.Aligned, c.Score(), mark)
	}
	return b.String(), cands, selected
}

// QA reproduces E5: coverage over the generated question set (paper:
// 91.68% over 23,472 questions; 2.14 concepts per covered entity).
func (s *Suite) QA(n int) (string, qa.CoverageResult) {
	cfg := qa.DefaultGeneratorConfig()
	if n > 0 {
		cfg.N = n
	}
	res := qa.Evaluate(qa.Generate(s.World, cfg), s.Result.Taxonomy, s.Result.Mentions)
	out := fmt.Sprintf("questions=%d covered=%d coverage=%.2f%% avg-concepts-per-covered-entity=%.2f\n",
		res.Questions, res.Covered, res.Coverage()*100, res.AvgConceptsPerEntity)
	return out, res
}

// AblationRow is one verification-ablation configuration (A1).
type AblationRow struct {
	Name      string
	IsA       int
	Precision float64
}

// Ablation rebuilds the taxonomy with each verification strategy
// disabled in turn, plus all-off (the Bigcilin-like configuration) and
// all-on.
func (s *Suite) Ablation() (string, []AblationRow, error) {
	type cfg struct {
		name   string
		mutate func(*core.Options)
	}
	cfgs := []cfg{
		{"full verification", func(*core.Options) {}},
		{"- incompatible", func(o *core.Options) { o.Verify.EnableIncompatible = false }},
		{"- named-entity", func(o *core.Options) { o.Verify.EnableNE = false }},
		{"- syntax rules", func(o *core.Options) { o.Verify.EnableSyntax = false }},
		{"no verification", func(o *core.Options) {
			o.Verify.EnableIncompatible = false
			o.Verify.EnableNE = false
			o.Verify.EnableSyntax = false
		}},
	}
	var rows []AblationRow
	for _, c := range cfgs {
		opts := s.Opts
		c.mutate(&opts)
		res, err := core.New(opts).Build(s.World.Corpus())
		if err != nil {
			return "", nil, fmt.Errorf("ablation %q: %w", c.name, err)
		}
		pr := eval.SamplePrecision(eval.EdgePairs(res.Taxonomy.Edges(), 0), s.Oracle, sampleSize, 1)
		rows = append(rows, AblationRow{Name: c.name, IsA: res.Taxonomy.EdgeCount(), Precision: pr.Precision()})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %10s\n", "configuration", "# isA", "precision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %10d %9.1f%%\n", r.Name, r.IsA, r.Precision*100)
	}
	return b.String(), rows, nil
}

// NeuralResult summarizes the E7 copy-mechanism ablation.
type NeuralResult struct {
	TrainSamples, TestSamples int
	AccCopy, AccNoCopy        float64
	OOVTargets                int
	OOVAccCopy, OOVAccNoCopy  float64
}

// Neural reproduces E7: the copy mechanism vs the plain seq2seq on the
// distant-supervision task, with the OOV breakdown that motivated
// CopyNet in the paper.
func (s *Suite) Neural(maxSamples, epochs int) (string, NeuralResult, error) {
	bracket := candidatesBySource(s.Result.Candidates, taxonomy.SourceBracket)
	samples := extract.BuildDistantDataset(s.World.Corpus(), bracket, s.Result.Segmenter)
	if len(samples) < 20 {
		return "", NeuralResult{}, fmt.Errorf("neural ablation: only %d distant samples", len(samples))
	}
	if maxSamples > 0 && len(samples) > maxSamples {
		samples = samples[:maxSamples]
	}
	// Deterministic 90/10 split.
	cut := len(samples) * 9 / 10
	train, test := samples[:cut], samples[cut:]

	run := func(useCopy bool) (float64, float64, int) {
		cfg := copynet.DefaultConfig()
		cfg.UseCopy = useCopy
		// A deliberately small vocabulary makes OOV concepts common —
		// the exact condition the paper adopts CopyNet for ("merely
		// using this basic model suffers from OOV").
		cfg.Vocab = 300
		var seqs [][]string
		for _, smp := range train {
			seqs = append(seqs, smp.Src, smp.Tgt)
		}
		vocab := copynet.BuildVocab(seqs, cfg.Vocab)
		model := copynet.New(cfg, vocab)
		model.Train(train, epochs, 0.01, nil)
		hit, oovHit, oovN := 0, 0, 0
		for _, smp := range test {
			got := strings.Join(model.Generate(smp.Src), "")
			want := strings.Join(smp.Tgt, "")
			oov := false
			for _, t := range smp.Tgt {
				if !vocab.Known(t) {
					oov = true
				}
			}
			if oov {
				oovN++
			}
			if got == want {
				hit++
				if oov {
					oovHit++
				}
			}
		}
		acc := float64(hit) / float64(len(test))
		oovAcc := 0.0
		if oovN > 0 {
			oovAcc = float64(oovHit) / float64(oovN)
		}
		return acc, oovAcc, oovN
	}
	accCopy, oovAccCopy, oovN := run(true)
	accNo, oovAccNo, _ := run(false)
	res := NeuralResult{
		TrainSamples: len(train), TestSamples: len(test),
		AccCopy: accCopy, AccNoCopy: accNo,
		OOVTargets: oovN, OOVAccCopy: oovAccCopy, OOVAccNoCopy: oovAccNo,
	}
	out := fmt.Sprintf("train=%d test=%d | exact-match: copy=%.1f%% no-copy=%.1f%% | OOV targets=%d: copy=%.1f%% no-copy=%.1f%%\n",
		res.TrainSamples, res.TestSamples, res.AccCopy*100, res.AccNoCopy*100,
		res.OOVTargets, res.OOVAccCopy*100, res.OOVAccNoCopy*100)
	return out, res, nil
}

func candidatesBySource(cands []extract.Candidate, src taxonomy.Source) []extract.Candidate {
	var out []extract.Candidate
	for _, c := range cands {
		if c.Source&src != 0 {
			out = append(out, c)
		}
	}
	return out
}

// SeparationVsSuffixRow compares the paper's PMI separation algorithm
// against the naive longest-suffix heuristic (Bigcilin's bracket
// treatment) — the A-level ablation DESIGN.md calls out for E3.
type SeparationVsSuffixRow struct {
	Name       string
	Candidates int
	Precision  float64
}

// SeparationVsSuffix extracts bracket hypernyms with both algorithms
// over the whole corpus and scores them against the oracle.
func (s *Suite) SeparationVsSuffix() (string, []SeparationVsSuffixRow) {
	sep := extract.NewSeparator(s.Result.Segmenter, s.Result.Stats)
	var pmiPairs, sfxPairs []eval.Pair
	for _, p := range s.World.Corpus().Pages {
		if p.Bracket == "" {
			continue
		}
		id := p.ID()
		for _, c := range sep.Extract(p.Title, p.Bracket) {
			pmiPairs = append(pmiPairs, eval.Pair{Hypo: id, Hyper: c.Hyper})
		}
		// Naive heuristic: last content word of each compound.
		for _, part := range strings.FieldsFunc(p.Bracket, func(r rune) bool { return r == '、' || r == '，' }) {
			toks := s.Result.Segmenter.Cut(part)
			for i := len(toks) - 1; i >= 0; i-- {
				if len([]rune(toks[i])) >= 2 {
					sfxPairs = append(sfxPairs, eval.Pair{Hypo: id, Hyper: toks[i]})
					break
				}
			}
		}
	}
	rows := []SeparationVsSuffixRow{
		{Name: "PMI separation", Candidates: len(pmiPairs),
			Precision: eval.SamplePrecision(pmiPairs, s.Oracle, sampleSize, 1).Precision()},
		{Name: "suffix heuristic", Candidates: len(sfxPairs),
			Precision: eval.SamplePrecision(sfxPairs, s.Oracle, sampleSize, 1).Precision()},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %10s\n", "algorithm", "candidates", "precision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %9.1f%%\n", r.Name, r.Candidates, r.Precision*100)
	}
	return b.String(), rows
}

// SeparationDemo walks the paper's Figure 3 example through the
// separation algorithm (for documentation and the separation example).
func (s *Suite) SeparationDemo(compounds []string) string {
	sep := extract.NewSeparator(s.Result.Segmenter, s.Result.Stats)
	var b strings.Builder
	for _, c := range compounds {
		t := sep.Separate(c)
		fmt.Fprintf(&b, "%s → words %v → hypernyms %v\n", c, t.Words, t.Hypernyms)
	}
	return b.String()
}

// Summary prints the headline stats (the paper's abstract numbers),
// including ground-truth coverage — the paper's fifth metric, which a
// synthetic world makes measurable as recall.
func (s *Suite) Summary() string {
	st := s.Result.Report.Stats
	pr := eval.SamplePrecision(eval.EdgePairs(s.Result.Taxonomy.Edges(), 0), s.Oracle, sampleSize, 1)
	ids := make([]string, 0, len(s.World.Entities))
	for _, e := range s.World.Entities {
		ids = append(ids, e.ID)
	}
	cov := eval.Coverage(s.Result.Taxonomy, s.Oracle, ids)
	keys := make([]string, 0, len(s.Result.Report.PerSource))
	for k := range s.Result.Report.PerSource {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	return fmt.Sprintf(
		"pages=%d entities=%d concepts=%d isA=%d (entity-concept=%d, subconcept=%d) precision=%.1f%% entity-coverage=%.1f%% pair-recall=%.1f%% sources=%v\n",
		s.Result.Report.Pages, st.Entities, st.Concepts, st.IsARelations,
		st.EntityConceptIsA, st.SubConceptIsA, pr.Precision()*100,
		cov.EntityCoverage()*100, cov.PairRecall()*100, keys)
}
