package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cnprobase/internal/api"
	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/snapshot"
	"cnprobase/internal/synth"
	"cnprobase/internal/wal"
)

// RecoveryBenchPoint is one recovery measurement: cold-start the
// serving state from the base snapshot plus the WAL tail as it stood
// after `Batches` ingested batches.
type RecoveryBenchPoint struct {
	// Batches is how many ingested batches the WAL tail held.
	Batches int `json:"batches"`
	// WALBytes is the on-disk size of the log at this point.
	WALBytes int64 `json:"wal_bytes"`
	// LoadSeconds is the base-snapshot decode time.
	LoadSeconds float64 `json:"load_seconds"`
	// ReplaySeconds is the WAL open + replay time on top of the load.
	ReplaySeconds float64 `json:"replay_seconds"`
	// RecoverySeconds is the total cold-start time (load + replay).
	RecoverySeconds float64 `json:"recovery_seconds"`
	// Replayed is the batch count the replay actually applied (sanity:
	// equals Batches unless a batch was skipped).
	Replayed int `json:"replayed"`
}

// RecoveryBenchResult is the machine-readable durability record the CI
// pipeline emits as BENCH_RECOVERY.json. The claim it documents:
// crash-recovery cost is load-the-snapshot plus replay-the-tail, the
// replay component grows with the un-compacted WAL suffix, and
// compaction collapses it — a restart from the compacted snapshot pays
// only snapshot-load time again (CompactedRecoverySeconds tracks
// Points[0].LoadSeconds, not Points[len-1].RecoverySeconds).
type RecoveryBenchResult struct {
	// Entities is the synthetic-world size the corpus was generated at.
	Entities int `json:"entities"`
	// InitialPages is the size of the base build the snapshot captures.
	InitialPages int `json:"initial_pages"`
	// BatchPages is the fixed per-batch delta size.
	BatchPages int `json:"batch_pages"`
	// SnapshotBytes is the base snapshot's on-disk size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Points holds one recovery measurement per ingested batch.
	Points []RecoveryBenchPoint `json:"points"`
	// CompactedSnapshotBytes / CompactedRecoverySeconds measure a
	// restart after compaction folded the whole tail into a fresh
	// snapshot: the WAL below its LSN is truncated, so recovery is a
	// pure snapshot load again.
	CompactedSnapshotBytes   int64   `json:"compacted_snapshot_bytes"`
	CompactedRecoverySeconds float64 `json:"compacted_recovery_seconds"`
	// TailOverCompacted is the last point's full recovery time over the
	// compacted restart time — how much startup latency compaction
	// reclaimed at this tail length.
	TailOverCompacted float64 `json:"tail_over_compacted"`
}

// RunRecoveryBench measures cold-start recovery cost as the WAL tail
// grows, then the same restart after compaction. It builds over the
// first 1/(batches+1) of a synthetic world, saves that as the base
// snapshot, appends the remaining pages as `batches` fixed-size JSONL
// batches to a real on-disk WAL (applying each live, exactly like the
// ingest plane), and after every batch times a full recovery: decode
// the base snapshot, open the log, replay past the snapshot's LSN.
// Like the other Run*Bench functions it is dependency-free (no testing
// package) so cmd/experiments can emit BENCH_RECOVERY.json from a
// plain binary.
func RunRecoveryBench(entities, batches int) (*RecoveryBenchResult, error) {
	if batches < 1 {
		batches = 8
	}
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	pages := w.Corpus().Pages
	chunk := len(pages) / (batches + 1)
	if chunk == 0 {
		return nil, fmt.Errorf("experiments: world of %d pages cannot feed %d batches", len(pages), batches)
	}
	slice := func(lo, hi int) *encyclopedia.Corpus {
		c := &encyclopedia.Corpus{}
		c.Pages = append(c.Pages, pages[lo:hi]...)
		return c
	}

	opts := core.DefaultOptions()
	opts.EnableNeural = false // keep the measurement deterministic
	pipeline := core.New(opts)
	res, err := pipeline.Build(slice(0, chunk))
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "cnprobase-recoverybench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "base.snap")
	walDir := filepath.Join(dir, "wal")
	snapBytes, err := saveBenchSnapshot(snapPath, res, 0)
	if err != nil {
		return nil, err
	}

	out := &RecoveryBenchResult{
		Entities:      wcfg.Entities,
		InitialPages:  chunk,
		BatchPages:    chunk,
		SnapshotBytes: snapBytes,
	}

	// Ingest loop: append each batch to the WAL first, then apply it —
	// the same write-ahead ordering Ingester.apply uses. The writer log
	// is closed around each measurement so the timed recovery opens the
	// directory exactly as a restarted server would.
	log, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		return nil, err
	}
	lastLSN := uint64(0)
	for b := 1; b <= batches; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if b == batches {
			hi = len(pages) // the last batch absorbs the remainder
		}
		payload, err := encodeJSONLPages(pages[lo:hi])
		if err != nil {
			return nil, err
		}
		lsn, err := log.Append(payload)
		if err != nil {
			return nil, fmt.Errorf("experiments: wal append batch %d: %w", b, err)
		}
		lastLSN = lsn
		if _, err := pipeline.Update(res, slice(lo, hi)); err != nil {
			return nil, fmt.Errorf("experiments: update batch %d: %w", b, err)
		}
		if err := log.Close(); err != nil {
			return nil, err
		}
		point, err := measureRecovery(snapPath, walDir, b)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, point)
		if log, err = wal.Open(walDir, wal.Options{}); err != nil {
			return nil, err
		}
	}

	// Compaction: fold the whole tail into a fresh snapshot at the last
	// applied LSN and truncate the log below it, then time the restart
	// that snapshot buys.
	compactPath := filepath.Join(dir, "compacted.snap")
	if out.CompactedSnapshotBytes, err = saveBenchSnapshot(compactPath, res, lastLSN); err != nil {
		return nil, err
	}
	if err := log.Roll(); err != nil {
		return nil, err
	}
	if _, err := log.TruncateBelow(lastLSN); err != nil {
		return nil, err
	}
	if err := log.Close(); err != nil {
		return nil, err
	}
	point, err := measureRecovery(compactPath, walDir, 0)
	if err != nil {
		return nil, err
	}
	out.CompactedRecoverySeconds = point.RecoverySeconds
	last := out.Points[len(out.Points)-1]
	out.TailOverCompacted = last.RecoverySeconds / point.RecoverySeconds
	return out, nil
}

// measureRecovery times one cold start: decode the snapshot at path,
// open the WAL directory, replay everything past the snapshot's LSN.
func measureRecovery(snapPath, walDir string, batches int) (RecoveryBenchPoint, error) {
	point := RecoveryBenchPoint{Batches: batches}
	var err error
	if point.WALBytes, err = dirBytes(walDir); err != nil {
		return point, err
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		return point, err
	}
	runtime.GC() // keep ambient garbage out of the timed region
	start := time.Now()
	st, err := snapshot.Load(bytes.NewReader(data), snapshot.Options{})
	if err != nil {
		return point, fmt.Errorf("experiments: load %s: %w", snapPath, err)
	}
	loaded := time.Now()
	res := &core.Result{
		Taxonomy: st.Taxonomy,
		Mentions: st.Mentions,
		Report:   &core.Report{Pages: st.Meta.Pages, Shards: st.Taxonomy.ShardCount(), Stats: st.Taxonomy.ComputeStats()},
		Evidence: st.Evidence,
		Kept:     st.Kept,
		Stats:    st.Stats,
	}
	ropts := core.DefaultOptions()
	ropts.EnableNeural = false
	l, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		return point, err
	}
	_, stats, err := api.ReplayWAL(res, core.New(ropts), l, st.Meta.LSN)
	if cerr := l.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return point, fmt.Errorf("experiments: replay: %w", err)
	}
	end := time.Now()
	point.LoadSeconds = loaded.Sub(start).Seconds()
	point.ReplaySeconds = end.Sub(loaded).Seconds()
	point.RecoverySeconds = end.Sub(start).Seconds()
	point.Replayed = stats.Applied
	return point, nil
}

// saveBenchSnapshot writes res as a snapshot covering lsn and returns
// the file size.
func saveBenchSnapshot(path string, res *core.Result, lsn uint64) (int64, error) {
	st := &snapshot.State{
		Taxonomy: res.Taxonomy,
		Mentions: res.Mentions,
		Meta: snapshot.Meta{
			Pages: res.Report.Pages,
			Stats: res.Taxonomy.ComputeStats(),
			LSN:   lsn,
		},
		Evidence: res.Evidence,
		Kept:     res.Kept,
		Stats:    res.Stats,
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := snapshot.Save(f, st, snapshot.Options{}); err != nil {
		return 0, errors.Join(err, f.Close())
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// encodeJSONLPages renders pages in the /ingest wire format: one JSON
// page per line.
func encodeJSONLPages(pages []encyclopedia.Page) ([]byte, error) {
	var buf bytes.Buffer
	for i := range pages {
		b, err := json.Marshal(&pages[i])
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// dirBytes sums the sizes of the regular files directly under dir.
func dirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// WriteJSON emits the record as indented JSON.
func (r *RecoveryBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
