package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"cnprobase/internal/api"
	"cnprobase/internal/core"
	"cnprobase/internal/synth"
)

// OverloadPoint is one cell of the overload matrix: a closed-loop
// client population at some multiple of server capacity, with or
// without admission control.
type OverloadPoint struct {
	// Admission is whether the admission controller was armed.
	Admission bool `json:"admission"`
	// Multiple is the offered load as a multiple of MaxInFlight
	// (1 = at capacity, 16 = heavy overload).
	Multiple int `json:"multiple"`
	// Clients is the closed-loop client count (Multiple × MaxInFlight);
	// Requests the total requests they issued.
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// Seconds is the wall time for the whole population.
	Seconds float64 `json:"seconds"`
	// Served counts 200s, Shed counts 429s, Timeout counts deadline
	// 503s. Served+Shed+Timeout == Requests.
	Served  int `json:"served"`
	Shed    int `json:"shed"`
	Timeout int `json:"timeout"`
	// GoodputPerSec is successful responses per second — the number
	// that must NOT collapse as Multiple grows.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// ShedRate is Shed / Requests.
	ShedRate float64 `json:"shed_rate"`
	// P99Ms is the client-observed p99 latency of *successful*
	// requests; P99ShedMs the p99 of shed (429) responses — sheds must
	// be fast to be useful.
	P99Ms     float64 `json:"p99_ms"`
	P99ShedMs float64 `json:"p99_shed_ms,omitempty"`
}

// OverloadBenchResult is the machine-readable overload record the CI
// pipeline emits as BENCH_OVERLOAD.json: goodput, client-observed p99
// and shed rate at 1×/4×/16× saturation, with and without admission
// control, over the real serving stack (admission + deadline + panic
// guard + mux) on a real listener. The claim it documents: with
// admission control, goodput holds and excess load turns into fast
// clean 429s; without it, p99 inflates with the queue instead.
type OverloadBenchResult struct {
	Entities    int   `json:"entities"`
	MaxInFlight int   `json:"max_inflight"`
	DelayMicros int   `json:"delay_micros"`
	BurnMicros  int   `json:"burn_micros"`
	Levels      []int `json:"levels"`
	// Points holds one entry per (admission, level) pair.
	Points []OverloadPoint `json:"points"`
}

// overloadLevels is the offered-load ladder, in multiples of capacity.
var overloadLevels = []int{1, 4, 16}

// RunOverloadBench builds a small world, serves it with a deliberately
// small admission cap and a fixed per-request cost (so capacity is
// controlled, not incidental), and drives closed-loop client
// populations at each load level — once with admission control, once
// without.
func RunOverloadBench(entities, requestsPerLevel int) (*OverloadBenchResult, error) {
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		return nil, err
	}
	view := res.Freeze()

	maxInFlight := runtime.GOMAXPROCS(0)
	if maxInFlight < 2 {
		maxInFlight = 2
	}
	// Per-request cost is a sleep plus a CPU burn. The sleep is what
	// makes saturation observable: a sleeping handler holds its
	// admission slot without holding a CPU, so excess arrivals actually
	// find the semaphore full and shed (a pure CPU burn on a small box
	// self-throttles arrivals through the run queue and nothing ever
	// sheds). The burn is what makes unbounded concurrency hurt: without
	// admission, every extra in-flight request adds real CPU contention
	// and the served p99 inflates with the queue.
	const delay = 1 * time.Millisecond
	const burn = 200 * time.Microsecond
	if requestsPerLevel <= 0 {
		requestsPerLevel = 4000
	}

	out := &OverloadBenchResult{
		Entities:    wcfg.Entities,
		MaxInFlight: maxInFlight,
		DelayMicros: int(delay / time.Microsecond),
		BurnMicros:  int(burn / time.Microsecond),
		Levels:      overloadLevels,
	}
	for _, admission := range []bool{true, false} {
		rc := api.ResilienceConfig{
			LookupTimeout: 30 * time.Second, // generous: this run measures shedding, not deadlines
			HandlerDelay:  delay,
			HandlerBurn:   burn,
		}
		if admission {
			// Zero wait: a saturated server sheds instantly, so the
			// matrix cleanly separates served from shed. (Production
			// defaults add a short bounded wait to ride out
			// micro-bursts; that would blur the measurement here.)
			rc.MaxInFlight = maxInFlight
			rc.AdmitWait = 0
		}
		for _, multiple := range overloadLevels {
			srv := api.NewViewServerConfig(view, rc)
			ts := httptest.NewServer(srv.Handler())
			p := drive(ts, admission, multiple, maxInFlight*multiple, requestsPerLevel)
			ts.Close()
			out.Points = append(out.Points, p)
		}
	}
	return out, nil
}

// drive runs one closed-loop population: `clients` goroutines share a
// budget of `total` requests, each firing its next request as soon as
// the previous one returns.
func drive(ts *httptest.Server, admission bool, multiple, clients, total int) OverloadPoint {
	url := ts.URL + "/api/men2ent?mention=压测提及"
	transport := ts.Client().Transport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = clients
	client := &http.Client{Transport: transport}

	var mu sync.Mutex
	var served, shed, timeout int
	var okLat, shedLat []time.Duration

	per := total / clients
	if per == 0 {
		per = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myOK := make([]time.Duration, 0, per)
			myShed := make([]time.Duration, 0, per)
			var myServed, myShed429, myTimeout int
			for i := 0; i < per; i++ {
				t0 := time.Now()
				resp, err := client.Get(url)
				lat := time.Since(t0)
				if err != nil {
					continue // connection-level failure: counted in neither bucket
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					myServed++
					myOK = append(myOK, lat)
				case http.StatusTooManyRequests:
					myShed429++
					myShed = append(myShed, lat)
				case http.StatusServiceUnavailable:
					myTimeout++
				}
			}
			mu.Lock()
			served += myServed
			shed += myShed429
			timeout += myTimeout
			okLat = append(okLat, myOK...)
			shedLat = append(shedLat, myShed...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	requests := per * clients
	p := OverloadPoint{
		Admission: admission,
		Multiple:  multiple,
		Clients:   clients,
		Requests:  requests,
		Seconds:   elapsed,
		Served:    served,
		Shed:      shed,
		Timeout:   timeout,
		P99Ms:     p99ms(okLat),
		P99ShedMs: p99ms(shedLat),
	}
	if elapsed > 0 {
		p.GoodputPerSec = float64(served) / elapsed
	}
	if requests > 0 {
		p.ShedRate = float64(shed) / float64(requests)
	}
	return p
}

// p99ms returns the 99th-percentile of durations in milliseconds, or
// 0 for an empty sample.
func p99ms(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return float64(lat[idx].Microseconds()) / 1000
}

// Describe renders one point as a human-readable line.
func (p OverloadPoint) Describe() string {
	mode := "no admission"
	if p.Admission {
		mode = "admission"
	}
	return fmt.Sprintf("%-12s %2dx load (%3d clients): %6.0f good req/s, p99 %7.2fms, shed %5.1f%% (p99 %6.2fms), timeouts %d",
		mode, p.Multiple, p.Clients, p.GoodputPerSec, p.P99Ms, p.ShedRate*100, p.P99ShedMs, p.Timeout)
}

// WriteJSON emits the record as indented JSON.
func (r *OverloadBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
