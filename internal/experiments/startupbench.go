package experiments

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/snapshot"
	"cnprobase/internal/synth"
)

// StartupSample is one taxonomy size's cold-start measurement: the
// same serving state written in both on-disk layouts, timed from file
// to query-ready view through each path.
type StartupSample struct {
	// Entities is the synthetic-world size; Nodes/Edges/Mentions the
	// resulting taxonomy shape.
	Entities int `json:"entities"`
	Nodes    int `json:"nodes"`
	Edges    int `json:"edges"`
	Mentions int `json:"mentions"`
	// DecodeBytes / MappedBytes are the v2 (striped) and v3 (image)
	// snapshot file sizes.
	DecodeBytes int64 `json:"decode_bytes"`
	MappedBytes int64 `json:"mapped_bytes"`
	// DecodeMs is LoadView over the v2 file (parse + build); MapMs is
	// OpenMapped over the v3 file (validate + alias). Best of several
	// runs.
	DecodeMs float64 `json:"decode_ms"`
	MapMs    float64 `json:"map_ms"`
	// DecodeHeapBytes / MapHeapBytes are the live-heap growth each
	// path's view costs (the mapped view keeps strings and numeric
	// arrays in the file, so its heap footprint is the derived indexes
	// only).
	DecodeHeapBytes uint64 `json:"decode_heap_bytes"`
	MapHeapBytes    uint64 `json:"map_heap_bytes"`
}

// StartupBenchResult is the BENCH_STARTUP.json record: cold-start cost
// of the two snapshot read paths across growing taxonomy sizes. The
// headline property: the mapped path skips all string parsing, hashing
// and interning (checksum verification and index rebuild remain, at
// memory bandwidth), so MapMs sits an order of magnitude below
// DecodeMs with a far smaller slope, and MapHeapBytes stays near the
// derived-index size while DecodeHeapBytes carries the whole taxonomy.
type StartupBenchResult struct {
	Sizes []StartupSample `json:"sizes"`
	// MapSpeedupAtLargest is DecodeMs/MapMs at the biggest size.
	MapSpeedupAtLargest float64 `json:"map_speedup_at_largest"`
	// MapGrowth / DecodeGrowth are each path's largest-over-smallest
	// time ratio; mapped startup should stay near 1 while the taxonomy
	// grows severalfold.
	DecodeGrowth float64 `json:"decode_growth"`
	MapGrowth    float64 `json:"map_growth"`
}

// startupReps measures each read path this many times and keeps the
// fastest run — the page cache is warm after the first, so the minimum
// isolates CPU cost from IO noise.
const startupReps = 5

// RunStartupBench builds the synthetic world at base, 2x and 4x size,
// saves each state in both the striped v2 layout and the mappable v3
// layout, and measures file-to-view cold start (wall time and live-heap
// growth) through LoadView and OpenMapped.
func RunStartupBench(baseEntities int) (*StartupBenchResult, error) {
	if baseEntities <= 0 {
		baseEntities = 1000
	}
	dir, err := os.MkdirTemp("", "cnp-startup-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	out := &StartupBenchResult{}
	for _, mult := range []int{1, 2, 4} {
		sample, err := measureStartup(dir, baseEntities*mult)
		if err != nil {
			return nil, err
		}
		out.Sizes = append(out.Sizes, *sample)
	}
	first, last := out.Sizes[0], out.Sizes[len(out.Sizes)-1]
	if last.MapMs > 0 {
		out.MapSpeedupAtLargest = last.DecodeMs / last.MapMs
	}
	if first.DecodeMs > 0 {
		out.DecodeGrowth = last.DecodeMs / first.DecodeMs
	}
	if first.MapMs > 0 {
		out.MapGrowth = last.MapMs / first.MapMs
	}
	return out, nil
}

func measureStartup(dir string, entities int) (*StartupSample, error) {
	wcfg := synth.DefaultConfig()
	wcfg.Entities = entities
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		return nil, err
	}
	st := &snapshot.State{
		Taxonomy: res.Taxonomy,
		Mentions: res.Mentions,
		Meta:     snapshot.Meta{Pages: res.Report.Pages, Stats: res.Report.Stats},
	}
	v2Path := filepath.Join(dir, "snap-v2.cnp")
	v3Path := filepath.Join(dir, "snap-v3.cnp")
	if err := writeSnapshot(v2Path, st, snapshot.SaveLegacy); err != nil {
		return nil, err
	}
	if err := writeSnapshot(v3Path, st, snapshot.Save); err != nil {
		return nil, err
	}

	sample := &StartupSample{
		Entities: entities,
		Nodes:    len(res.Taxonomy.Nodes()),
		Edges:    res.Taxonomy.EdgeCount(),
		Mentions: res.Mentions.Size(),
	}
	if fi, err := os.Stat(v2Path); err == nil {
		sample.DecodeBytes = fi.Size()
	}
	if fi, err := os.Stat(v3Path); err == nil {
		sample.MappedBytes = fi.Size()
	}

	sample.DecodeMs, sample.DecodeHeapBytes, err = bestOf(startupReps, func() (func(), error) {
		f, err := os.Open(v2Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		v, _, err := snapshot.LoadView(f, snapshot.Options{})
		if err != nil {
			return nil, err
		}
		return func() { runtime.KeepAlive(v) }, nil
	})
	if err != nil {
		return nil, err
	}
	sample.MapMs, sample.MapHeapBytes, err = bestOf(startupReps, func() (func(), error) {
		v, _, err := snapshot.OpenMapped(v3Path)
		if err != nil {
			return nil, err
		}
		return func() { runtime.KeepAlive(v) }, nil
	})
	if err != nil {
		return nil, err
	}
	return sample, nil
}

// bestOf runs open repeatedly and returns the fastest wall time in
// milliseconds plus the live-heap growth of the first run. The
// returned keepAlive pins the opened view across the heap measurement
// so the GC cannot collect it mid-reading; the double GC before each
// run drains finalizer-resurrected views (mapped views unmap via
// finalizer) so earlier reps cannot inflate the baseline.
func bestOf(reps int, open func() (func(), error)) (float64, uint64, error) {
	best, heap := 0.0, uint64(0)
	for i := 0; i < reps; i++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		keepAlive, err := open()
		elapsed := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			runtime.GC()
			runtime.ReadMemStats(&m1)
			if m1.HeapAlloc > m0.HeapAlloc {
				heap = m1.HeapAlloc - m0.HeapAlloc
			}
		}
		keepAlive()
		if i == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, heap, nil
}

func writeSnapshot(path string, st *snapshot.State, save func(io.Writer, *snapshot.State, snapshot.Options) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := save(f, st, snapshot.Options{}); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// WriteJSON emits the record as indented JSON.
func (r *StartupBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
