package experiments

import (
	"strings"
	"testing"

	"cnprobase/internal/core"
	"cnprobase/internal/eval"
)

func coverageOf(s *Suite, ids []string) eval.CoverageResult {
	return eval.Coverage(s.Result.Taxonomy, s.Oracle, ids)
}

func testSuite(t *testing.T) *Suite {
	t.Helper()
	opts := core.DefaultOptions()
	opts.NeuralEpochs = 1
	opts.NeuralMaxSamples = 300
	opts.Neural.Vocab = 400
	s, err := NewSuite(1200, opts)
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	return s
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	s := testSuite(t)
	out, rows := s.Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := make(map[string]int, len(rows))
	for i, r := range rows {
		byName[r.Name] = i
	}
	wiki := rows[byName["Chinese WikiTaxonomy"]]
	big := rows[byName["Bigcilin"]]
	tran := rows[byName["Probase-Tran"]]
	cn := rows[byName["CN-Probase"]]

	// Ordering claims of the paper's Table I.
	if cn.IsA <= wiki.IsA || cn.IsA <= tran.IsA {
		t.Errorf("CN-Probase must have the most isA: cn=%d wiki=%d tran=%d", cn.IsA, wiki.IsA, tran.IsA)
	}
	if cn.Entities < big.Entities || cn.Entities <= tran.Entities {
		t.Errorf("CN-Probase must have the most entities: %+v", rows)
	}
	if !(wiki.Precision >= cn.Precision && cn.Precision > big.Precision && big.Precision > tran.Precision) {
		t.Errorf("precision ordering broken: wiki=%.3f cn=%.3f big=%.3f tran=%.3f",
			wiki.Precision, cn.Precision, big.Precision, tran.Precision)
	}
	if cn.Precision < 0.90 {
		t.Errorf("CN-Probase precision %.3f below band", cn.Precision)
	}
	if tran.Precision > 0.75 {
		t.Errorf("Probase-Tran precision %.3f too high for the translation story", tran.Precision)
	}
	if !strings.Contains(out, "CN-Probase") {
		t.Error("formatted table missing CN-Probase row")
	}
}

func TestTable2Workload(t *testing.T) {
	s := testSuite(t)
	out, stats, err := s.Table2(600)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	total := stats.Men2Ent + stats.GetConcept + stats.GetEntity
	if total != 600 {
		t.Errorf("total calls = %d, want 600", total)
	}
	if stats.Men2Ent <= stats.GetConcept {
		t.Errorf("men2ent should dominate (paper mix): %+v", stats)
	}
	if !strings.Contains(out, "men2ent") {
		t.Error("formatted table malformed")
	}
}

func TestPerSourceBands(t *testing.T) {
	s := testSuite(t)
	_, rows := s.PerSource()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Kept > r.Generated {
			t.Errorf("source %v kept > generated: %+v", r.Source, r)
		}
		if r.Generated > 0 && r.PrecisionKept < r.PrecisionGenerated-0.02 {
			t.Errorf("source %v: verification reduced precision %.3f → %.3f",
				r.Source, r.PrecisionGenerated, r.PrecisionKept)
		}
	}
}

func TestPredicatesCuration(t *testing.T) {
	s := testSuite(t)
	_, cands, selected := s.Predicates()
	if len(cands) == 0 || len(selected) == 0 {
		t.Fatalf("cands=%d selected=%d", len(cands), len(selected))
	}
	if len(selected) > 12 {
		t.Errorf("curated %d predicates, cap is 12", len(selected))
	}
	if len(selected) >= len(cands) && len(cands) > 8 {
		t.Error("curation should discard the low-score tail")
	}
	// 职业 must always be discovered — it is the paper's flagship
	// example.
	found := false
	for _, sel := range selected {
		if sel == "职业" {
			found = true
		}
	}
	if !found {
		t.Errorf("职业 not curated: %v", selected)
	}
}

func TestQAReproduction(t *testing.T) {
	s := testSuite(t)
	_, res := s.QA(3000)
	if res.Questions != 3000 {
		t.Fatalf("questions = %d", res.Questions)
	}
	if res.Coverage() < 0.80 || res.Coverage() > 0.99 {
		t.Errorf("coverage = %.3f, want in the paper's ~0.92 band", res.Coverage())
	}
	if res.AvgConceptsPerEntity < 1.5 {
		t.Errorf("avg concepts = %.2f, want ≥1.5 (paper: 2.14)", res.AvgConceptsPerEntity)
	}
}

func TestSummaryMentionsEverySource(t *testing.T) {
	s := testSuite(t)
	sum := s.Summary()
	for _, want := range []string{"entities=", "concepts=", "isA=", "precision=", "entity-coverage="} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q: %s", want, sum)
		}
	}
}

func TestSeparationVsSuffix(t *testing.T) {
	s := testSuite(t)
	out, rows := s.SeparationVsSuffix()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	pmi, sfx := rows[0], rows[1]
	if pmi.Candidates <= sfx.Candidates {
		t.Errorf("PMI separation should recover more hypernyms: pmi=%d suffix=%d",
			pmi.Candidates, sfx.Candidates)
	}
	if pmi.Precision < 0.90 || sfx.Precision < 0.90 {
		t.Errorf("both bracket extractors should be high precision: %+v", rows)
	}
	if !strings.Contains(out, "PMI separation") {
		t.Errorf("output malformed:\n%s", out)
	}
}

func TestGroundTruthCoverageBand(t *testing.T) {
	s := testSuite(t)
	ids := make([]string, 0, len(s.World.Entities))
	for _, e := range s.World.Entities {
		ids = append(ids, e.ID)
	}
	cov := coverageOf(s, ids)
	if cov.EntityCoverage() < 0.9 {
		t.Errorf("entity coverage = %.3f; most entities should have a correct hypernym", cov.EntityCoverage())
	}
	if cov.PairRecall() < 0.5 {
		t.Errorf("pair recall = %.3f; the multi-source design should recover most truth", cov.PairRecall())
	}
}
