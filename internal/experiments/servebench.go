package experiments

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"time"

	"cnprobase/internal/api"
	"cnprobase/internal/core"
	"cnprobase/internal/synth"
)

// ServeBenchResult is the machine-readable serving-workload record the
// CI pipeline emits as BENCH_SERVE.json: the extended Table II mix
// (men2ent, getConcept, getEntity, conceptualize, qa) with Zipfian
// argument skew fired over real HTTP against the immutable serving
// view, recording end-to-end throughput and the server's own
// per-endpoint latency histograms.
type ServeBenchResult struct {
	// Entities is the synthetic-world size; Calls the workload length.
	Entities int `json:"entities"`
	Calls    int `json:"calls"`
	// Seconds is total wall time for the workload; ReqPerSec the
	// resulting single-client throughput (sequential requests over one
	// connection — a latency-bound, not saturation, number).
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	// Issued is the realized call mix in Table II order.
	Issued api.Stats `json:"issued"`
	// Endpoints is the server-side per-endpoint latency summary
	// (p50/p99 from the same histograms /api/stats reports).
	Endpoints []api.EndpointLatency `json:"endpoints"`
}

// RunServeBench builds a world, freezes it into a serving view, serves
// it over a real HTTP listener, and drives the mixed Zipfian workload
// through api.RunWorkload — the exact serving stack cnpserver runs,
// measured end to end.
func RunServeBench(entities, calls int) (*ServeBenchResult, error) {
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false // keep the measurement deterministic
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		return nil, err
	}
	srv := api.NewViewServer(res.Freeze())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := api.MixedWorkloadConfig()
	if calls > 0 {
		cfg.Calls = calls
	}
	start := time.Now()
	issued, err := api.RunWorkload(api.NewClient(ts.URL), res.Taxonomy, res.Mentions, cfg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()

	out := &ServeBenchResult{
		Entities:  wcfg.Entities,
		Calls:     cfg.Calls,
		Seconds:   elapsed,
		Issued:    issued,
		Endpoints: srv.LatencyReport(),
	}
	if elapsed > 0 {
		out.ReqPerSec = float64(cfg.Calls) / elapsed
	}
	return out, nil
}

// WriteJSON emits the record as indented JSON.
func (r *ServeBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
