package experiments

import (
	"encoding/json"
	"io"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/eval"
	"cnprobase/internal/qa"
	"cnprobase/internal/synth"
)

// QABenchResult is the machine-readable QA-serving record the CI
// pipeline emits as BENCH_QA.json: the paper's E5 coverage experiment
// run on the immutable serving view (the path /api/qa uses), with the
// paper's reported numbers alongside for drift tracking, plus
// ground-truth coverage and question-evaluation throughput.
type QABenchResult struct {
	// Entities is the synthetic-world size; Questions the dataset size.
	Entities  int `json:"entities"`
	Questions int `json:"questions"`
	// Coverage is the fraction of questions with at least one taxonomy
	// mention or concept (paper: 0.9168 over NLPCC-2016 QA).
	Coverage float64 `json:"coverage"`
	// AvgConceptsPerCoveredEntity mirrors the paper's 2.14.
	AvgConceptsPerCoveredEntity float64 `json:"avg_concepts_per_covered_entity"`
	// PaperCoverage / PaperAvgConcepts are the paper's reported numbers,
	// embedded so the artifact is self-describing.
	PaperCoverage    float64 `json:"paper_coverage"`
	PaperAvgConcepts float64 `json:"paper_avg_concepts"`
	// QuestionsPerSec is view-backed evaluation throughput (single
	// goroutine, steady state).
	QuestionsPerSec float64 `json:"questions_per_sec"`
	// EntityCoverage / PairRecall measure the taxonomy against the
	// synthetic ground truth, evaluated on the same serving view.
	EntityCoverage float64 `json:"entity_coverage"`
	PairRecall     float64 `json:"pair_recall"`
}

// RunQABench builds a world, freezes it into a serving view, and runs
// the QA coverage experiment on the view — the same data path the
// /api/qa endpoint serves. Like RunBuildBench it is dependency-free
// so cmd/experiments can emit BENCH_QA.json from a plain binary.
func RunQABench(entities, questions int) (*QABenchResult, error) {
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.EnableNeural = false // keep the measurement deterministic
	res, err := core.New(opts).Build(w.Corpus())
	if err != nil {
		return nil, err
	}
	view := res.Freeze()

	qcfg := qa.DefaultGeneratorConfig()
	if questions > 0 {
		qcfg.N = questions
	}
	qs := qa.Generate(w, qcfg)
	cov := qa.EvaluateSource(qs, view)

	out := &QABenchResult{
		Entities:                    wcfg.Entities,
		Questions:                   cov.Questions,
		Coverage:                    cov.Coverage(),
		AvgConceptsPerCoveredEntity: cov.AvgConceptsPerEntity,
		PaperCoverage:               0.9168,
		PaperAvgConcepts:            2.14,
	}

	// Ground-truth recall on the same view the endpoints serve from.
	ids := make([]string, 0, len(w.Entities))
	for _, e := range w.Entities {
		ids = append(ids, e.ID)
	}
	truth := eval.CoverageOf(view, w.Oracle(), ids)
	out.EntityCoverage = truth.EntityCoverage()
	out.PairRecall = truth.PairRecall()

	// Throughput: repeat the full evaluation until the measurement is
	// long enough to be stable.
	evaluated := 0
	start := time.Now()
	for time.Since(start) < minMeasure {
		qa.EvaluateSource(qs, view)
		evaluated += len(qs)
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		out.QuestionsPerSec = float64(evaluated) / sec
	}
	return out, nil
}

// WriteJSON writes the record as indented JSON.
func (r *QABenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
