package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/synth"
)

// UpdateBenchBatch is one incremental batch's measurement.
type UpdateBenchBatch struct {
	// Batch is the 1-based batch number.
	Batch int `json:"batch"`
	// Pages is the delta size.
	Pages int `json:"pages"`
	// AccumulatedPages is the corpus size after folding this batch in.
	AccumulatedPages int `json:"accumulated_pages"`
	// Seconds is the batch's Update wall time.
	Seconds float64 `json:"seconds"`
	// PagesPerSec is the batch's delta throughput.
	PagesPerSec float64 `json:"pages_per_sec"`
	// Reverified / CandidateUnion show the O(delta) mechanism at work:
	// how many candidate decisions the pass recomputed out of the
	// whole accumulated union.
	Reverified     int `json:"reverified"`
	CandidateUnion int `json:"candidate_union"`
}

// UpdateBenchResult is the machine-readable incremental-update record
// the CI pipeline emits as BENCH_UPDATE.json. The claim it documents:
// with fixed-size delta batches, per-batch update cost stays flat as
// the accumulated corpus grows — LastOverFirst stays near 1 while
// GrowthFactor approaches Batches+1.
type UpdateBenchResult struct {
	// Entities is the synthetic-world size the pool was generated at.
	Entities int `json:"entities"`
	// InitialPages is the size of the initial Build.
	InitialPages int `json:"initial_pages"`
	// BatchPages is the fixed delta size.
	BatchPages int `json:"batch_pages"`
	// Workers is the resolved pipeline worker count.
	Workers int `json:"workers"`
	// Batches holds the per-batch measurements.
	Batches []UpdateBenchBatch `json:"batches"`
	// FirstBatchSeconds / LastBatchSeconds / LastOverFirst summarize
	// the flatness criterion (last ≤ 1.5× first while the corpus grows
	// ~(len(Batches)+1)×). Both endpoints are per-page medians over the
	// first three and last three batches, so one stray scheduler or GC
	// hiccup cannot masquerade as asymptotic growth; the raw per-batch
	// numbers are all in Batches.
	FirstBatchSeconds float64 `json:"first_batch_seconds"`
	LastBatchSeconds  float64 `json:"last_batch_seconds"`
	LastOverFirst     float64 `json:"last_over_first"`
	// GrowthFactor is final corpus size over initial corpus size.
	GrowthFactor float64 `json:"corpus_growth_factor"`
}

// RunUpdateBench builds over the first 1/(batches+1) of a synthetic
// world and then folds the rest in as `batches` fixed-size deltas
// through core.Update, timing each batch. Like RunBuildBench it is
// dependency-free (no testing package) so cmd/experiments can emit
// BENCH_UPDATE.json from a plain binary.
func RunUpdateBench(entities, batches int) (*UpdateBenchResult, error) {
	if batches < 1 {
		batches = 10
	}
	wcfg := synth.DefaultConfig()
	if entities > 0 {
		wcfg.Entities = entities
	}
	w, err := synth.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	pages := w.Corpus().Pages
	chunk := len(pages) / (batches + 1)
	if chunk == 0 {
		return nil, fmt.Errorf("experiments: world of %d pages cannot feed %d batches", len(pages), batches)
	}
	slice := func(lo, hi int) *encyclopedia.Corpus {
		c := &encyclopedia.Corpus{}
		c.Pages = append(c.Pages, pages[lo:hi]...)
		return c
	}

	opts := core.DefaultOptions()
	opts.EnableNeural = false // keep the measurement deterministic
	pipeline := core.New(opts)
	res, err := pipeline.Build(slice(0, chunk))
	if err != nil {
		return nil, err
	}
	out := &UpdateBenchResult{
		Entities:     wcfg.Entities,
		InitialPages: chunk,
		BatchPages:   chunk,
		Workers:      res.Report.Workers,
	}
	for b := 1; b <= batches; b++ {
		lo, hi := b*chunk, (b+1)*chunk
		if b == batches {
			hi = len(pages) // the last batch absorbs the remainder
		}
		// Collect the previous batch's garbage outside the timed
		// region, so a background GC pause does not land on an
		// arbitrary batch and read as growth.
		runtime.GC()
		start := time.Now()
		if _, err := pipeline.Update(res, slice(lo, hi)); err != nil {
			return nil, fmt.Errorf("experiments: update batch %d: %w", b, err)
		}
		secs := time.Since(start).Seconds()
		out.Batches = append(out.Batches, UpdateBenchBatch{
			Batch:            b,
			Pages:            hi - lo,
			AccumulatedPages: hi,
			Seconds:          secs,
			PagesPerSec:      float64(hi-lo) / secs,
			Reverified:       res.Report.Verification.Reverified,
			CandidateUnion:   res.Report.Verification.Input,
		})
	}
	// Endpoint cost = median per-page seconds over a 3-batch window
	// (normalizing for the remainder pages the final batch absorbs).
	window := 3
	if window > len(out.Batches) {
		window = len(out.Batches)
	}
	perPage := func(bs []UpdateBenchBatch) float64 {
		xs := make([]float64, len(bs))
		for i, b := range bs {
			xs[i] = b.Seconds / float64(b.Pages)
		}
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	firstCost := perPage(out.Batches[:window])
	lastCost := perPage(out.Batches[len(out.Batches)-window:])
	out.FirstBatchSeconds = firstCost * float64(chunk)
	out.LastBatchSeconds = lastCost * float64(chunk)
	out.LastOverFirst = lastCost / firstCost
	out.GrowthFactor = float64(out.Batches[len(out.Batches)-1].AccumulatedPages) / float64(chunk)
	return out, nil
}

// WriteJSON emits the record as indented JSON.
func (r *UpdateBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
