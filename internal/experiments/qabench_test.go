package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunQABench runs the view-backed QA bench on a small world and
// checks the record is complete and serialises with the documented
// field names.
func TestRunQABench(t *testing.T) {
	res, err := RunQABench(400, 200)
	if err != nil {
		t.Fatalf("RunQABench: %v", err)
	}
	if res.Entities != 400 || res.Questions != 200 {
		t.Fatalf("sizes = %d entities / %d questions, want 400/200", res.Entities, res.Questions)
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Errorf("coverage = %v, want in (0, 1]", res.Coverage)
	}
	if res.AvgConceptsPerCoveredEntity <= 0 {
		t.Errorf("avg concepts per covered entity = %v, want > 0", res.AvgConceptsPerCoveredEntity)
	}
	if res.PaperCoverage != 0.9168 || res.PaperAvgConcepts != 2.14 {
		t.Errorf("paper reference numbers = %v / %v, want 0.9168 / 2.14",
			res.PaperCoverage, res.PaperAvgConcepts)
	}
	if res.EntityCoverage <= 0 || res.PairRecall <= 0 {
		t.Errorf("ground truth: entity coverage %v, pair recall %v, want both > 0",
			res.EntityCoverage, res.PairRecall)
	}
	if res.QuestionsPerSec <= 0 {
		t.Errorf("questions/s = %v, want > 0", res.QuestionsPerSec)
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	for _, key := range []string{
		"entities", "questions", "coverage", "avg_concepts_per_covered_entity",
		"paper_coverage", "paper_avg_concepts", "questions_per_sec",
		"entity_coverage", "pair_recall",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("emitted JSON missing %q:\n%s", key, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "\n") {
		t.Error("WriteJSON output not indented")
	}
}
