// Package cnprobase is the public API of the CN-Probase reproduction:
// a generation + verification pipeline that builds a large-scale
// Chinese conceptual taxonomy from an encyclopedia corpus (Chen et al.,
// "CN-Probase: A Data-driven Approach for Large-scale Chinese Taxonomy
// Construction", ICDE 2019).
//
// The typical flow is three calls:
//
//	world, _ := cnprobase.GenerateWorld(cnprobase.DefaultWorldConfig()) // or ReadCorpus
//	res, _ := cnprobase.Build(world.Corpus(), cnprobase.DefaultOptions())
//	hypernyms := res.Taxonomy.Hypernyms(entityID)
//
// Build runs the four generation algorithms (bracket separation, neural
// generation from abstracts, infobox predicate discovery, tag
// extraction), merges candidates, applies the three verification
// strategies (incompatible concepts, named-entity hypernyms, syntax
// rules) and assembles the taxonomy with derived subconcept edges.
//
// The pipeline is concurrent: Options.Workers sizes the bounded worker
// pool every stage fans out over (0 = one worker per CPU, 1 = fully
// sequential) and Options.Shards sets the shard count of the
// lock-per-shard taxonomy store the build assembles into. Any worker
// count produces the same taxonomy, so parallelism is a pure throughput
// knob.
package cnprobase

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"cnprobase/internal/api"
	"cnprobase/internal/baselines"
	"cnprobase/internal/conceptualize"
	"cnprobase/internal/core"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/eval"
	"cnprobase/internal/qa"
	"cnprobase/internal/serving"
	"cnprobase/internal/snapshot"
	"cnprobase/internal/synth"
	"cnprobase/internal/taxonomy"
	"cnprobase/internal/wal"
)

// Re-exported types. Aliases keep the internal packages unimportable
// while making the full API usable through this package.
type (
	// Taxonomy is the constructed isA graph.
	Taxonomy = taxonomy.Taxonomy
	// Edge is one isA relation with provenance.
	Edge = taxonomy.Edge
	// Source tags which algorithm generated an edge.
	Source = taxonomy.Source
	// TaxonomyStats summarizes a taxonomy (Table I row shape).
	TaxonomyStats = taxonomy.Stats
	// MentionIndex resolves surface mentions to entity IDs (men2ent).
	MentionIndex = taxonomy.MentionIndex

	// Corpus is an in-memory encyclopedia dump.
	Corpus = encyclopedia.Corpus
	// Page is one encyclopedia page (bracket, abstract, infobox, tags).
	Page = encyclopedia.Page
	// Triple is one infobox SPO triple.
	Triple = encyclopedia.Triple

	// Options configures the construction pipeline.
	Options = core.Options
	// Result bundles the pipeline outputs.
	Result = core.Result
	// Report describes a pipeline run.
	Report = core.Report

	// WorldConfig sizes the synthetic encyclopedia generator.
	WorldConfig = synth.Config
	// World is a generated ground-truth universe.
	World = synth.World
	// Oracle judges isA pairs against the world's ground truth.
	Oracle = synth.Oracle

	// APIServer serves men2ent/getConcept/getEntity over HTTP.
	APIServer = api.Server

	// ServingView is the immutable, read-optimized serving view the
	// HTTP APIs answer from: interned node IDs, CSR adjacency,
	// pre-sorted typicality rankings, flat sorted mention table — zero
	// locks and near-zero allocation per query. Obtain one with
	// Result.Freeze (from a build) or LoadSnapshotView (from a file).
	ServingView = serving.View

	// Conceptualizer turns short text into a ranked concept vector.
	Conceptualizer = conceptualize.Engine
	// Conceptualization is the result of conceptualizing one text.
	Conceptualization = conceptualize.Result
	// Understanding is the QA text-understanding result: whether the
	// taxonomy covers the text, plus each recognized mention with its
	// candidate entities and their concepts.
	Understanding = qa.Understanding
	// Scored couples a taxonomy node with a typicality score.
	Scored = taxonomy.Scored
)

// Source bits, re-exported.
const (
	SourceBracket     = taxonomy.SourceBracket
	SourceAbstract    = taxonomy.SourceAbstract
	SourceInfobox     = taxonomy.SourceInfobox
	SourceTag         = taxonomy.SourceTag
	SourceMorph       = taxonomy.SourceMorph
	SourceSubsume     = taxonomy.SourceSubsume
	SourceTranslation = taxonomy.SourceTranslation
)

// DefaultOptions returns the calibrated full-pipeline configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Build constructs the taxonomy from an encyclopedia corpus.
func Build(c *Corpus, opts Options) (*Result, error) {
	return core.New(opts).Build(c)
}

// Update incrementally extends a prior Build result with newly crawled
// pages (the never-ending extraction mode of the substrate the paper's
// system runs on). The prior taxonomy is extended in place. Update
// cost is proportional to the delta: only new text is segmented and
// recognized, the persistent verification evidence on the Result folds
// forward, and only fresh candidates plus those whose evidence changed
// are re-verified. Results restored with LoadSnapshot (evidence-
// carrying snapshots) accept Update too.
func Update(prev *Result, delta *Corpus, opts Options) (*Result, error) {
	return core.New(opts).Update(prev, delta)
}

// NewConceptualizer builds the short-text conceptualization engine over
// a built taxonomy — the downstream application layer of Section V.
func NewConceptualizer(t *Taxonomy, m *MentionIndex) *Conceptualizer {
	return conceptualize.New(t, m)
}

// NewViewConceptualizer builds the conceptualization engine directly
// over an immutable serving view — the engine behind
// /api/conceptualize. It produces bitwise-identical results to a
// store-backed NewConceptualizer over the same data (pinned by the
// equivalence tests) while sharing the view's lock-free, allocation-
// free lookup path.
func NewViewConceptualizer(v *ServingView) *Conceptualizer {
	return conceptualize.NewView(v)
}

// Understand runs QA-style text understanding over a serving view —
// the engine behind /api/qa: recognize entity mentions and standalone
// concepts in the question and report whether the taxonomy covers it.
// The covered predicate is exactly the one the E5 coverage experiment
// counts.
func Understand(text string, v *ServingView) Understanding {
	return qa.Understand(text, v)
}

// DefaultWorldConfig returns the calibrated synthetic-world settings.
func DefaultWorldConfig() WorldConfig { return synth.DefaultConfig() }

// GenerateWorld builds a synthetic encyclopedia world with ground
// truth (the substitute for the CN-DBpedia dump; see DESIGN.md).
func GenerateWorld(cfg WorldConfig) (*World, error) { return synth.Generate(cfg) }

// ReadCorpus loads a JSON-Lines encyclopedia dump.
func ReadCorpus(r io.Reader) (*Corpus, error) { return encyclopedia.ReadJSONL(r) }

// NewTaxonomy returns an empty taxonomy for manual assembly.
func NewTaxonomy() *Taxonomy { return taxonomy.New() }

// ReadTaxonomy loads a taxonomy serialized with Taxonomy.WriteJSON.
func ReadTaxonomy(r io.Reader) (*Taxonomy, error) { return taxonomy.ReadJSON(r) }

// NewAPIServer builds the HTTP server over a taxonomy and mention
// index by freezing their current contents into an immutable serving
// view (see ServingView). Later writes to the store are not served;
// freeze a new view and call APIServer.SwapView to publish them.
func NewAPIServer(t *Taxonomy, m *MentionIndex) *APIServer { return api.NewServer(t, m) }

// NewViewServer builds the HTTP server directly over an
// already-compiled serving view — the path cnpserver -load uses so a
// snapshot becomes a serving process without ever materializing the
// mutable build store.
func NewViewServer(v *ServingView) *APIServer { return api.NewViewServer(v) }

// ServerResilience tunes the overload-safety stack wrapped around the
// query endpoints: the admission-control cap and bounded wait (beyond
// which requests are shed with 429 + Retry-After), the per-request
// deadlines for the lookup and batch endpoint classes (JSON 503 on
// expiry), and the chaos knobs (artificial per-request delay/CPU burn)
// drain drills and the overload benchmark inject.
type ServerResilience = api.ResilienceConfig

// DefaultServerResilience is the production default resilience
// configuration (the one NewViewServer applies).
func DefaultServerResilience() ServerResilience { return api.DefaultResilience() }

// NewViewServerResilient is NewViewServer with an explicit resilience
// configuration — cnpserver builds its server through this so the
// admission cap, deadlines and chaos knobs are flag-tunable.
func NewViewServerResilient(v *ServingView, rc ServerResilience) *APIServer {
	return api.NewViewServerConfig(v, rc)
}

// Ingester is the continuous-ingestion admin endpoint: POST JSONL
// pages to /ingest and a single updater goroutine folds each batch
// into the taxonomy via Update, freezes the result and swaps the
// serving view atomically — zero-downtime never-ending extraction.
// Serve its Handler on a dedicated listener (cnpserver -ingest), never
// the public API port.
type Ingester = api.Ingester

// NewIngester starts the updater goroutine over a mutable build Result
// (a fresh Build, or a snapshot loaded with LoadSnapshot whose
// evidence section is present) publishing to srv. opts configures the
// incremental update passes exactly like Update. Ingestion through
// this constructor is volatile — accepted batches live only in process
// memory until the next SaveSnapshot; use NewDurableIngester for
// crash-safe ingestion.
func NewIngester(res *Result, opts Options, srv *APIServer) (*Ingester, error) {
	return api.NewIngester(res, core.New(opts), srv)
}

// WAL is the segmented, checksummed, fsync-on-commit write-ahead log
// durable ingestion runs on (docs/WAL.md specifies the format).
type WAL = wal.Log

// ReplayStats summarizes a WAL replay (batches applied and skipped,
// last log position reached).
type ReplayStats = api.ReplayStats

// OpenWAL opens (creating if needed) the write-ahead log directory and
// repairs a torn tail left by a crash mid-append.
func OpenWAL(dir string) (*WAL, error) {
	return wal.Open(dir, wal.Options{})
}

// ReplayWAL folds the log's records past `after` — the LSN the loaded
// snapshot covers (LoadSnapshotLSN returns it) — into res, recovering
// the exact state the crashed process had acknowledged. opts
// configures the update passes exactly like Update.
func ReplayWAL(res *Result, l *WAL, after uint64, opts Options) (*Result, ReplayStats, error) {
	return api.ReplayWAL(res, core.New(opts), l, after)
}

// DurableIngestConfig configures crash-safe ingestion: the open WAL
// new batches commit to, the snapshot file the background compactor
// rewrites (usually the file the server loaded from), the LSN that
// snapshot already covers, the compaction period (0 disables the
// background compactor) and the queue bound beyond which /ingest
// answers 429 (0 selects the default).
type DurableIngestConfig struct {
	WAL          *WAL
	SnapshotPath string
	SnapshotLSN  uint64
	CompactEvery time.Duration
	Queue        int
}

// NewDurableIngester starts the updater goroutine with a write-ahead
// log: every accepted batch is appended and fsynced before it is
// applied, so a 200 from /ingest survives a crash — restart with
// LoadSnapshotLSN + OpenWAL + ReplayWAL to recover. The ingester owns
// cfg.WAL (Close flushes and closes it) and, when cfg.CompactEvery is
// set, periodically rewrites cfg.SnapshotPath with an LSN-stamped
// snapshot and truncates the log below it.
func NewDurableIngester(res *Result, opts Options, srv *APIServer, cfg DurableIngestConfig) (*Ingester, error) {
	return api.NewDurableIngester(res, core.New(opts), srv, api.IngesterConfig{
		WAL:          cfg.WAL,
		SnapshotPath: cfg.SnapshotPath,
		SnapshotLSN:  cfg.SnapshotLSN,
		CompactEvery: cfg.CompactEvery,
		Queue:        cfg.Queue,
		SaveSnapshot: func(w io.Writer, r *core.Result, lsn uint64) error {
			return saveSnapshotLSN(w, r, lsn)
		},
	})
}

// SaveSnapshot writes the complete serving state of a build — the
// taxonomy with full edge provenance, the mention index, the build
// report, and (when the Result carries it) the persistent update
// substrate: verification evidence, kept candidates and corpus
// statistics — as a versioned, checksummed binary snapshot. A server can
// LoadSnapshot the file and be query-ready in milliseconds instead of
// re-running the pipeline (build once, serve many). Encoding fans out
// over the same worker count the build used; the bytes are identical
// for any Workers/Shards configuration, so snapshots of the same
// logical taxonomy are directly comparable. The on-disk layout is
// specified in docs/SNAPSHOT.md.
func SaveSnapshot(w io.Writer, res *Result) error {
	return saveSnapshotLSN(w, res, 0)
}

// SaveSnapshotLSN is SaveSnapshot with the write-ahead-log position
// stamped into the snapshot metadata: the saved state covers every
// WAL record up to and including lsn, so recovery replays strictly
// after it. An LSN of zero writes byte-identical output to
// SaveSnapshot. The durable ingest plane's compactor saves through
// this path.
func SaveSnapshotLSN(w io.Writer, res *Result, lsn uint64) error {
	return saveSnapshotLSN(w, res, lsn)
}

func saveSnapshotLSN(w io.Writer, res *Result, lsn uint64) error {
	if res == nil || res.Taxonomy == nil {
		return fmt.Errorf("cnprobase: SaveSnapshot needs a Result with a taxonomy")
	}
	var (
		meta    snapshot.Meta
		workers int
	)
	if res.Report != nil {
		rep := *res.Report // normalize the runtime knobs out of the saved report
		rep.Workers, rep.Shards = 0, 0
		raw, err := json.Marshal(&rep)
		if err != nil {
			return fmt.Errorf("cnprobase: encode snapshot report: %w", err)
		}
		meta = snapshot.Meta{Pages: rep.Pages, Stats: rep.Stats, Report: raw}
		workers = res.Report.Workers
	} else {
		meta.Stats = res.Taxonomy.ComputeStats()
	}
	meta.LSN = lsn
	st := &snapshot.State{
		Taxonomy: res.Taxonomy,
		Mentions: res.Mentions,
		Meta:     meta,
		Evidence: res.Evidence,
		Kept:     res.Kept,
		Stats:    res.Stats,
	}
	return snapshot.Save(w, st, snapshot.Options{Workers: workers})
}

// LoadSnapshot reads a snapshot written by SaveSnapshot and
// reassembles a Result ready for serving *and* further building:
// taxonomy (finalized, so every query answers exactly like the freshly
// built original), mention index, the saved build report with Stats
// recomputed from the loaded graph, and — for snapshots carrying the
// version-2 evidence section — the persistent verification evidence,
// kept candidate set and corpus statistics, so the Result accepts
// incremental Update (the segmenter is rebuilt from the dictionary and
// the restored statistics on first use). Legacy version-1 snapshots
// load without evidence; such Results serve queries but refuse Update.
// Decoding uses default concurrency and store settings; use
// LoadSnapshotSharded to tune them.
func LoadSnapshot(r io.Reader) (*Result, error) { return LoadSnapshotSharded(r, 0, 0) }

// LoadSnapshotSharded is LoadSnapshot with explicit concurrency and
// store-shape settings, mirroring the build's knobs: workers bounds
// the stripe-decode pool (0 = one per CPU, 1 = sequential) and shards
// is the shard count of the assembled taxonomy store (0 = default).
// Either setting yields the same loaded state.
func LoadSnapshotSharded(r io.Reader, workers, shards int) (*Result, error) {
	res, _, err := LoadSnapshotLSN(r, workers, shards)
	return res, err
}

// LoadSnapshotLSN is LoadSnapshotSharded returning, in addition, the
// write-ahead-log position the snapshot covers (zero for snapshots
// saved outside the durable ingest plane). Recovery passes that LSN
// to ReplayWAL so only the batches the snapshot missed are re-applied.
func LoadSnapshotLSN(r io.Reader, workers, shards int) (*Result, uint64, error) {
	st, err := snapshot.Load(r, snapshot.Options{Workers: workers, Shards: shards})
	if err != nil {
		return nil, 0, err
	}
	rep := &Report{}
	if len(st.Meta.Report) > 0 {
		if err := json.Unmarshal(st.Meta.Report, rep); err != nil {
			return nil, 0, fmt.Errorf("cnprobase: decode snapshot report: %w", err)
		}
	}
	if rep.Pages == 0 {
		rep.Pages = st.Meta.Pages
	}
	rep.Shards = st.Taxonomy.ShardCount()
	rep.Stats = st.Taxonomy.ComputeStats()
	return &Result{
		Taxonomy: st.Taxonomy,
		Mentions: st.Mentions,
		Report:   rep,
		Evidence: st.Evidence,
		Kept:     st.Kept,
		Stats:    st.Stats,
	}, st.Meta.LSN, nil
}

// LoadSnapshotView reads a snapshot written by SaveSnapshot and
// compiles it straight into an immutable serving view, skipping the
// mutable store entirely — the fastest path from file to serving
// traffic. workers bounds the stripe-decode pool (0 = one per CPU).
// The view answers every query exactly like a LoadSnapshot-restored
// taxonomy (pinned by the serving-equivalence tests); use LoadSnapshot
// instead when the mutable Result is needed (JSON export, experiments).
func LoadSnapshotView(r io.Reader, workers int) (*ServingView, error) {
	v, _, err := snapshot.LoadView(r, snapshot.Options{Workers: workers})
	return v, err
}

// ErrSnapshotNotMappable reports that a snapshot file predates the
// mappable version-3 layout. OpenSnapshotMapped returns it (wrapped)
// for version-1/2 files; callers fall back to LoadSnapshotView.
var ErrSnapshotNotMappable = snapshot.ErrNotMappable

// OpenSnapshotMapped memory-maps a version-3 snapshot file and serves
// straight off the mapping: after header and checksum verification the
// view's arrays alias the file's bytes, so startup cost is independent
// of taxonomy size and replicas share one page-cache copy. The mapping
// is released automatically once the view becomes unreachable (after a
// hot swap, once in-flight queries drain). Answers are byte-identical
// to LoadSnapshotView over the same state (pinned by the mapped
// serving-equivalence tests). Files older than version 3 return
// ErrSnapshotNotMappable.
func OpenSnapshotMapped(path string) (*ServingView, error) {
	v, _, err := snapshot.OpenMapped(path)
	return v, err
}

// SamplePrecision estimates the precision of a taxonomy by sampling
// `sample` isA pairs (the paper samples 2000) and judging them with the
// oracle.
func SamplePrecision(t *Taxonomy, o *Oracle, sample int, seed int64) float64 {
	return eval.SamplePrecision(eval.EdgePairs(t.Edges(), 0), o, sample, seed).Precision()
}

// QACoverage runs the paper's text-understanding experiment: generate
// n questions from the world and measure taxonomy coverage.
func QACoverage(w *World, res *Result, n int) (coverage, avgConcepts float64) {
	cfg := qa.DefaultGeneratorConfig()
	if n > 0 {
		cfg.N = n
	}
	r := qa.Evaluate(qa.Generate(w, cfg), res.Taxonomy, res.Mentions)
	return r.Coverage(), r.AvgConceptsPerEntity
}

// QACoverageView is QACoverage evaluated on an immutable serving view
// — the data path /api/qa answers from. Equal inputs give results
// identical to QACoverage (pinned by the serving-equivalence tests).
func QACoverageView(w *World, v *ServingView, n int) (coverage, avgConcepts float64) {
	cfg := qa.DefaultGeneratorConfig()
	if n > 0 {
		cfg.N = n
	}
	r := qa.EvaluateSource(qa.Generate(w, cfg), v)
	return r.Coverage(), r.AvgConceptsPerEntity
}

// Baseline configuration types, re-exported.
type (
	// WikiTaxonomyConfig tunes the tag-only baseline.
	WikiTaxonomyConfig = baselines.WikiTaxonomyConfig
	// BigcilinConfig tunes the no-verification baseline.
	BigcilinConfig = baselines.BigcilinConfig
	// ProbaseTranConfig tunes the translation baseline.
	ProbaseTranConfig = baselines.ProbaseTranConfig
)

// Baseline constructors and defaults, re-exported for the comparison
// experiments.
var (
	// BuildWikiTaxonomy is the tag-only high-precision baseline.
	BuildWikiTaxonomy = baselines.BuildWikiTaxonomy
	// BuildBigcilin is the multi-source no-verification baseline.
	BuildBigcilin = baselines.BuildBigcilin
	// BuildProbaseTran is the translate-English-Probase baseline.
	BuildProbaseTran = baselines.BuildProbaseTran
	// DefaultWikiTaxonomyConfig mirrors the paper's Table I row.
	DefaultWikiTaxonomyConfig = baselines.DefaultWikiTaxonomyConfig
	// DefaultBigcilinConfig mirrors the paper's Table I row.
	DefaultBigcilinConfig = baselines.DefaultBigcilinConfig
	// DefaultProbaseTranConfig mirrors the paper's Table I row.
	DefaultProbaseTranConfig = baselines.DefaultProbaseTranConfig
)
