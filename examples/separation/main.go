// Separation: a walkthrough of the paper's Figure 3 — the PMI-driven
// separation algorithm that extracts hypernyms from disambiguation
// brackets (蚂蚁金服首席战略官 → 首席战略官, 战略官).
//
// The example builds corpus statistics from a generated world so the
// PMI landscape is real, then separates a handful of brackets and
// prints the word sequences and right-spine hypernyms.
package main

import (
	"fmt"
	"log"

	"cnprobase"
	"cnprobase/internal/extract"
)

func main() {
	log.SetFlags(0)
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 3000
	world, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	opts := cnprobase.DefaultOptions()
	opts.EnableNeural = false // this example only needs the substrates
	res, err := cnprobase.Build(world.Corpus(), opts)
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	sep := extract.NewSeparator(res.Segmenter, res.Stats)
	fmt.Println("Figure 3 — separation algorithm walkthrough")
	fmt.Println()
	compounds := []string{
		"蚂蚁金服首席战略官", // the paper's running example
		"中国香港男演员",
		"著名女歌手",
		"清河大学教授",
		"演员",
	}
	for _, c := range compounds {
		t := sep.Separate(c)
		fmt.Printf("compound   %s\n", c)
		fmt.Printf("  words     %v\n", t.Words)
		fmt.Printf("  hypernyms %v\n", t.Hypernyms)
		fmt.Println()
	}

	// And on real generated brackets, with candidates:
	fmt.Println("on generated pages:")
	shown := 0
	for _, p := range world.Corpus().Pages {
		if p.Bracket == "" {
			continue
		}
		cands := sep.Extract(p.Title, p.Bracket)
		if len(cands) == 0 {
			continue
		}
		fmt.Printf("  %s（%s）", p.Title, p.Bracket)
		for _, cand := range cands {
			fmt.Printf(" → %s", cand.Hyper)
		}
		fmt.Println()
		if shown++; shown == 5 {
			break
		}
	}
}
