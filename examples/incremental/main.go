// Incremental: the never-ending-extraction mode. Build the taxonomy
// over an initial crawl, then feed later crawl batches through
// cnprobase.Update — new entities become queryable, statistics extend,
// and union-wide verification can even retract earlier edges that new
// evidence contradicts.
package main

import (
	"fmt"
	"log"

	"cnprobase"
)

func main() {
	log.SetFlags(0)
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 3000
	world, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	all := world.Corpus()
	third := all.Len() / 3
	batch := func(lo, hi int) *cnprobase.Corpus {
		c := &cnprobase.Corpus{}
		c.Pages = append(c.Pages, all.Pages[lo:hi]...)
		return c
	}

	opts := cnprobase.DefaultOptions()
	opts.EnableNeural = false // updates skip the neural stage anyway

	res, err := cnprobase.Build(batch(0, third), opts)
	if err != nil {
		log.Fatalf("initial build: %v", err)
	}
	report := func(stage string) {
		st := res.Report.Stats
		p := cnprobase.SamplePrecision(res.Taxonomy, world.Oracle(), 2000, 1)
		fmt.Printf("%-16s pages=%5d entities=%5d concepts=%4d isA=%6d precision=%.1f%%\n",
			stage, res.Report.Pages, st.Entities, st.Concepts, st.IsARelations, p*100)
	}
	report("initial crawl")

	if res, err = cnprobase.Update(res, batch(third, 2*third), opts); err != nil {
		log.Fatalf("update 1: %v", err)
	}
	report("after batch 2")

	if res, err = cnprobase.Update(res, batch(2*third, all.Len()), opts); err != nil {
		log.Fatalf("update 2: %v", err)
	}
	report("after batch 3")

	// A page from the last batch is fully integrated.
	last := all.Pages[all.Len()-1]
	fmt.Printf("\nnew page %s → hypernyms %v\n", last.ID(), res.Taxonomy.Hypernyms(last.ID()))
}
