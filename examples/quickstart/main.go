// Quickstart: generate a small synthetic encyclopedia, build the
// CN-Probase taxonomy over it, and query hypernyms/hyponyms — the
// minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"cnprobase"
)

func main() {
	log.SetFlags(0)

	// 1. A corpus. Normally ReadCorpus on a CN-DBpedia-style JSONL
	// dump; here the synthetic world (see DESIGN.md) stands in.
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 2000
	world, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	fmt.Printf("corpus: %d pages, %d infobox triples, %d tags\n",
		world.Corpus().Len(), world.Corpus().TripleCount(), world.Corpus().TagCount())

	// 2. Build the taxonomy: four generation algorithms + three
	// verification strategies (paper, Figure 2).
	res, err := cnprobase.Build(world.Corpus(), cnprobase.DefaultOptions())
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	st := res.Report.Stats
	fmt.Printf("taxonomy: %d entities, %d concepts, %d isA relations\n",
		st.Entities, st.Concepts, st.IsARelations)
	fmt.Printf("verification kept %d of %d candidates\n",
		res.Report.Verification.Kept, res.Report.Verification.Input)

	// 3. Query. Pick a person with hypernyms and walk upward.
	for _, e := range world.Entities {
		hs := res.Taxonomy.Hypernyms(e.ID)
		if len(hs) < 2 {
			continue
		}
		fmt.Printf("\ngetConcept(%s) = %v\n", e.ID, hs)
		fmt.Printf("ancestors = %v\n", res.Taxonomy.Ancestors(e.ID))
		if len(hs) > 0 {
			hypos := res.Taxonomy.Hyponyms(hs[0], 5)
			fmt.Printf("getEntity(%s, limit=5) = %v\n", hs[0], hypos)
		}
		// men2ent on the bare title.
		fmt.Printf("men2ent(%s) = %v\n", e.Title, res.Mentions.Lookup(e.Title))
		break
	}

	// 4. Score against the ground truth (the paper samples 2000 pairs
	// for manual labeling; the oracle knows the truth exactly).
	p := cnprobase.SamplePrecision(res.Taxonomy, world.Oracle(), 2000, 1)
	fmt.Printf("\nsampled precision: %.1f%% (paper reports 95%%)\n", p*100)
}
