// APIServer: build a taxonomy, serve the paper's three APIs over HTTP
// (Table II: men2ent / getConcept / getEntity), exercise them with the
// paper's observed workload mix, and print the usage table.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"cnprobase"
	"cnprobase/internal/api"
)

func main() {
	log.SetFlags(0)
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 2000
	world, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	res, err := cnprobase.Build(world.Corpus(), cnprobase.DefaultOptions())
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	srv := cnprobase.NewAPIServer(res.Taxonomy, res.Mentions)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving taxonomy at %s\n", ts.URL)

	client := api.NewClient(ts.URL)
	// A few hand-driven calls first.
	someTitle := world.Entities[0].Title
	if err := client.Men2Ent(someTitle); err != nil {
		log.Fatalf("men2ent: %v", err)
	}
	if err := client.GetConcept(world.Entities[0].ID); err != nil {
		log.Fatalf("getConcept: %v", err)
	}
	if err := client.GetEntity("演员"); err != nil {
		log.Fatalf("getEntity: %v", err)
	}

	// Then the paper's six-month mix, scaled down.
	cfg := api.DefaultWorkloadConfig()
	cfg.Calls = 10000
	if _, err := api.RunWorkload(client, res.Taxonomy, res.Mentions, cfg); err != nil {
		log.Fatalf("workload: %v", err)
	}
	fmt.Println("\nTable II — APIs and their usage (simulated workload):")
	fmt.Print(api.FormatTable2(srv.Counters()))
}
