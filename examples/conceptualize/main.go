// Conceptualize: short-text understanding with the taxonomy — the
// application the paper motivates (Section IV's QA-coverage experiment
// and the short-text classification citation).
//
// Given a sentence, the example finds entity mentions (men2ent),
// resolves them to disambiguated entities, looks up their concepts
// (getConcept) and prints a conceptualized reading of the text.
package main

import (
	"fmt"
	"log"
	"strings"

	"cnprobase"
)

func main() {
	log.SetFlags(0)
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 3000
	world, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	res, err := cnprobase.Build(world.Corpus(), cnprobase.DefaultOptions())
	if err != nil {
		log.Fatalf("build: %v", err)
	}

	// Compose questions that mention generated entities.
	var texts []string
	count := 0
	for _, e := range world.Entities {
		if len(res.Taxonomy.Hypernyms(e.ID)) == 0 {
			continue
		}
		texts = append(texts,
			fmt.Sprintf("%s的代表作品有哪些？", e.Title),
			fmt.Sprintf("请介绍一下%s。", e.Title),
		)
		if count++; count == 3 {
			break
		}
	}
	texts = append(texts, "今天天气怎么样？") // uncovered distractor

	for _, text := range texts {
		fmt.Printf("text: %s\n", text)
		mentions := res.Mentions.FindAll(text)
		if len(mentions) == 0 {
			fmt.Println("  (no taxonomy mention — uncovered)")
			fmt.Println()
			continue
		}
		for _, m := range mentions {
			ids := res.Mentions.Lookup(m)
			fmt.Printf("  mention %q → %d entit%s\n", m, len(ids), plural(len(ids)))
			for _, id := range ids {
				concepts := res.Taxonomy.Hypernyms(id)
				if len(concepts) == 0 {
					continue
				}
				fmt.Printf("    %s isA %s\n", id, strings.Join(concepts, "、"))
			}
		}
		fmt.Println()
	}

	cov, avg := cnprobase.QACoverage(world, res, 5000)
	fmt.Printf("QA coverage over 5000 generated questions: %.2f%% (paper: 91.68%%)\n", cov*100)
	fmt.Printf("avg concepts per covered entity: %.2f (paper: 2.14)\n", avg)
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
