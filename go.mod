module cnprobase

go 1.22
