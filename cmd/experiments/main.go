// Command experiments regenerates every table and figure of the
// paper's evaluation over a synthetic encyclopedia world (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	experiments [-entities N] [-all] [-table1] [-table2] [-sources]
//	            [-predicates] [-qa] [-neural] [-ablation] [-figure3]
//	experiments -bench-build [-entities N] [-bench-out BENCH_BUILD.json]
//	experiments -bench-update [-entities N] [-update-batches K] [-bench-update-out BENCH_UPDATE.json]
//	experiments -bench-recovery [-entities N] [-recovery-batches K] [-bench-recovery-out BENCH_RECOVERY.json]
//	experiments -bench-qa [-entities N] [-questions M] [-bench-qa-out BENCH_QA.json]
//	experiments -bench-serve [-entities N] [-serve-calls K] [-bench-serve-out BENCH_SERVE.json]
//	experiments -bench-startup [-entities N] [-bench-startup-out BENCH_STARTUP.json]
//	experiments -bench-overload [-entities N] [-overload-requests K] [-bench-overload-out BENCH_OVERLOAD.json]
//
// -bench-build skips the evaluation suite and instead measures the
// build-side hot path — steady-state segmentation runes/s, end-to-end
// pipeline pages/s (sequential and parallel), and allocations per cut —
// writing the record to -bench-out as JSON (CI uploads it as the
// BENCH_BUILD.json artifact, one data point per commit).
//
// -bench-update measures incremental-update cost: build over the first
// 1/(K+1) of the world, fold the rest in as K fixed-size delta batches
// through Update, and record per-batch wall time and pages/s. The
// emitted BENCH_UPDATE.json documents the O(delta) claim: last-batch
// cost stays within ~1.5× of the first even as the accumulated corpus
// grows ~(K+1)×.
//
// -bench-recovery measures durable-ingest cold-start cost: save a base
// snapshot, append K JSONL batches to a real on-disk WAL, and after
// each batch time a full recovery (snapshot load + WAL replay); then
// compact and time the restart the fresh snapshot buys. The emitted
// BENCH_RECOVERY.json documents that replay cost grows with the
// un-compacted tail and compaction collapses it back to snapshot-load
// time.
//
// -bench-qa runs the E5 QA coverage experiment on the immutable
// serving view — the same data path /api/qa serves — and records
// coverage, concepts-per-covered-entity (with the paper's 91.68% /
// 2.14 alongside), ground-truth recall, and question-evaluation
// throughput as BENCH_QA.json.
//
// -bench-serve fires the extended Table II mix (the three lookup APIs
// plus conceptualize and qa, Zipfian argument skew) over real HTTP
// against the serving view and records throughput and the server's
// per-endpoint p50/p99 as BENCH_SERVE.json.
//
// -bench-startup saves the same state in the striped v2 layout and the
// mappable v3 layout at growing world sizes and measures file-to-view
// cold start (LoadView decode vs OpenMapped) plus live-heap growth as
// BENCH_STARTUP.json — the record documenting the O(1) mapped start.
//
// -bench-overload drives closed-loop client populations at 1×/4×/16×
// of the serving plane's admission capacity — once with admission
// control armed, once without — over a real listener, and records
// goodput, client-observed p99 and shed rate per cell as
// BENCH_OVERLOAD.json: the record documenting that overload turns
// into fast clean 429s instead of collapsing goodput.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"cnprobase/internal/core"
	"cnprobase/internal/experiments"
)

// writeJSONFile creates path, streams write into it, and closes it —
// folding a close failure into the result so a full disk or quota hit
// at flush time cannot leave a bench artifact silently truncated.
func writeJSONFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		entities  = flag.Int("entities", 8000, "synthetic world size (entities)")
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "E1: Table I taxonomy comparison")
		table2    = flag.Bool("table2", false, "E2: Table II API workload")
		sources   = flag.Bool("sources", false, "E3/E4: per-source precision")
		preds     = flag.Bool("predicates", false, "E6: predicate discovery")
		qaFlag    = flag.Bool("qa", false, "E5: QA coverage")
		neural    = flag.Bool("neural", false, "E7: copy-mechanism ablation")
		ablation  = flag.Bool("ablation", false, "A1: verification ablation")
		figure3   = flag.Bool("figure3", false, "F3: separation algorithm walkthrough")
		apiCalls  = flag.Int("api-calls", 20000, "Table II workload size")
		questions = flag.Int("questions", 23472, "QA dataset size (paper: 23472)")
		benchB    = flag.Bool("bench-build", false, "measure build throughput and emit JSON instead of running experiments")
		benchOut  = flag.String("bench-out", "BENCH_BUILD.json", "output path for -bench-build")
		benchU    = flag.Bool("bench-update", false, "measure incremental-update cost across batches and emit JSON instead of running experiments")
		benchUOut = flag.String("bench-update-out", "BENCH_UPDATE.json", "output path for -bench-update")
		updateK   = flag.Int("update-batches", 10, "number of fixed-size delta batches for -bench-update")
		benchR    = flag.Bool("bench-recovery", false, "measure snapshot+WAL recovery cost and emit JSON instead of running experiments")
		benchROut = flag.String("bench-recovery-out", "BENCH_RECOVERY.json", "output path for -bench-recovery")
		recoverK  = flag.Int("recovery-batches", 8, "number of WAL batches for -bench-recovery")
		benchQ    = flag.Bool("bench-qa", false, "run QA coverage on the serving view and emit JSON instead of running experiments")
		benchQOut = flag.String("bench-qa-out", "BENCH_QA.json", "output path for -bench-qa")
		benchS    = flag.Bool("bench-serve", false, "measure the mixed HTTP serving workload and emit JSON instead of running experiments")
		benchSOut = flag.String("bench-serve-out", "BENCH_SERVE.json", "output path for -bench-serve")
		serveK    = flag.Int("serve-calls", 20000, "workload size for -bench-serve")
		benchSt   = flag.Bool("bench-startup", false, "measure snapshot cold-start (decode vs mmap) and emit JSON instead of running experiments")
		benchStO  = flag.String("bench-startup-out", "BENCH_STARTUP.json", "output path for -bench-startup")
		benchO    = flag.Bool("bench-overload", false, "measure goodput/p99/shed under 1x/4x/16x overload, with and without admission control, and emit JSON instead of running experiments")
		benchOOut = flag.String("bench-overload-out", "BENCH_OVERLOAD.json", "output path for -bench-overload")
		overloadK = flag.Int("overload-requests", 4000, "requests per load level for -bench-overload")
	)
	flag.Parse()
	if *benchB || *benchU || *benchR || *benchQ || *benchS || *benchSt || *benchO {
		if *benchB {
			runBuildBench(*entities, *benchOut)
		}
		if *benchU {
			runUpdateBench(*entities, *updateK, *benchUOut)
		}
		if *benchR {
			runRecoveryBench(*entities, *recoverK, *benchROut)
		}
		if *benchQ {
			runQABench(*entities, *questions, *benchQOut)
		}
		if *benchS {
			runServeBench(*entities, *serveK, *benchSOut)
		}
		if *benchSt {
			runStartupBench(*entities, *benchStO)
		}
		if *benchO {
			runOverloadBench(*entities, *overloadK, *benchOOut)
		}
		return
	}
	if !*all && !*table1 && !*table2 && !*sources && !*preds && !*qaFlag && !*neural && !*ablation && !*figure3 {
		*all = true
	}

	fmt.Printf("== building suite: %d entities ==\n", *entities)
	suite, err := experiments.NewSuite(*entities, core.DefaultOptions())
	if err != nil {
		log.Fatalf("building suite: %v", err)
	}
	fmt.Print(suite.Summary())

	if *all || *table1 {
		fmt.Println("\n== E1: Table I — comparison with other taxonomies ==")
		out, _ := suite.Table1()
		fmt.Print(out)
	}
	if *all || *table2 {
		fmt.Println("\n== E2: Table II — APIs and usage ==")
		out, _, err := suite.Table2(*apiCalls)
		if err != nil {
			log.Fatalf("table2: %v", err)
		}
		fmt.Print(out)
	}
	if *all || *sources {
		fmt.Println("\n== E3/E4: per-source precision ==")
		out, _ := suite.PerSource()
		fmt.Print(out)
	}
	if *all || *preds {
		fmt.Println("\n== E6: predicate discovery ==")
		out, _, _ := suite.Predicates()
		fmt.Print(out)
	}
	if *all || *qaFlag {
		fmt.Println("\n== E5: QA coverage ==")
		out, _ := suite.QA(*questions)
		fmt.Print(out)
	}
	if *all || *neural {
		fmt.Println("\n== E7: neural generation — copy mechanism ablation ==")
		out, _, err := suite.Neural(3000, 4)
		if err != nil {
			log.Fatalf("neural: %v", err)
		}
		fmt.Print(out)
	}
	if *all || *ablation {
		fmt.Println("\n== A1: verification ablation ==")
		out, _, err := suite.Ablation()
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		fmt.Print(out)
	}
	if *all || *figure3 {
		fmt.Println("\n== F3: separation algorithm walkthrough (Figure 3) ==")
		fmt.Print(suite.SeparationDemo([]string{
			"蚂蚁金服首席战略官",
			"中国香港男演员",
			"著名女歌手",
			"清河大学教授",
		}))
		fmt.Println("\n== A2: separation algorithm vs suffix heuristic ==")
		out, _ := suite.SeparationVsSuffix()
		fmt.Print(out)
	}
	os.Exit(0)
}

// runBuildBench measures the build hot path and writes BENCH_BUILD.json.
func runBuildBench(entities int, out string) {
	fmt.Printf("== build throughput bench: %d entities ==\n", entities)
	res, err := experiments.RunBuildBench(entities)
	if err != nil {
		log.Fatalf("bench-build: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	fmt.Printf("segmentation: %.0f runes/s, %.3f allocs/cut\n", res.RunesPerSec, res.AllocsPerCut)
	fmt.Printf("build: %.1f pages/s (%d workers), %.1f pages/s (sequential)\n",
		res.PagesPerSec, res.Workers, res.PagesPerSecSequential)
	fmt.Printf("wrote %s\n", out)
}

// runUpdateBench measures per-batch incremental-update cost and writes
// BENCH_UPDATE.json.
func runUpdateBench(entities, batches int, out string) {
	fmt.Printf("== incremental update bench: %d entities, %d batches ==\n", entities, batches)
	res, err := experiments.RunUpdateBench(entities, batches)
	if err != nil {
		log.Fatalf("bench-update: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	for _, b := range res.Batches {
		fmt.Printf("batch %2d: %4d pages in %7.1fms (%.0f pages/s, reverified %d/%d) — corpus now %d pages\n",
			b.Batch, b.Pages, b.Seconds*1000, b.PagesPerSec, b.Reverified, b.CandidateUnion, b.AccumulatedPages)
	}
	fmt.Printf("per-page cost last/first = %.2fx while corpus grew %.1fx\n", res.LastOverFirst, res.GrowthFactor)
	fmt.Printf("wrote %s\n", out)
}

// runRecoveryBench measures snapshot+WAL cold-start cost and writes
// BENCH_RECOVERY.json.
func runRecoveryBench(entities, batches int, out string) {
	fmt.Printf("== recovery bench: %d entities, %d wal batches ==\n", entities, batches)
	res, err := experiments.RunRecoveryBench(entities, batches)
	if err != nil {
		log.Fatalf("bench-recovery: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	for _, p := range res.Points {
		fmt.Printf("tail %2d batches (%7d wal bytes): load %6.1fms + replay %7.1fms = %7.1fms\n",
			p.Batches, p.WALBytes, p.LoadSeconds*1000, p.ReplaySeconds*1000, p.RecoverySeconds*1000)
	}
	fmt.Printf("compacted restart: %.1fms (%d snapshot bytes) — full tail was %.1fx slower\n",
		res.CompactedRecoverySeconds*1000, res.CompactedSnapshotBytes, res.TailOverCompacted)
	fmt.Printf("wrote %s\n", out)
}

// runQABench runs QA coverage on the serving view and writes
// BENCH_QA.json.
func runQABench(entities, questions int, out string) {
	fmt.Printf("== qa serving bench: %d entities, %d questions ==\n", entities, questions)
	res, err := experiments.RunQABench(entities, questions)
	if err != nil {
		log.Fatalf("bench-qa: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	fmt.Printf("coverage: %.2f%% (paper: %.2f%%), avg concepts per covered entity: %.2f (paper: %.2f)\n",
		res.Coverage*100, res.PaperCoverage*100, res.AvgConceptsPerCoveredEntity, res.PaperAvgConcepts)
	fmt.Printf("ground truth: entity coverage %.2f%%, pair recall %.2f%%\n",
		res.EntityCoverage*100, res.PairRecall*100)
	fmt.Printf("throughput: %.0f questions/s on the serving view\n", res.QuestionsPerSec)
	fmt.Printf("wrote %s\n", out)
}

// runServeBench fires the mixed HTTP workload at the serving view and
// writes BENCH_SERVE.json.
func runServeBench(entities, calls int, out string) {
	fmt.Printf("== serving workload bench: %d entities, %d calls ==\n", entities, calls)
	res, err := experiments.RunServeBench(entities, calls)
	if err != nil {
		log.Fatalf("bench-serve: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	fmt.Printf("throughput: %.0f req/s over %d calls (%.1fs)\n", res.ReqPerSec, res.Calls, res.Seconds)
	for _, ep := range res.Endpoints {
		fmt.Printf("latency %-13s calls=%-7d p50=%.3fms p99=%.3fms\n", ep.Endpoint, ep.Count, ep.P50Ms, ep.P99Ms)
	}
	fmt.Printf("wrote %s\n", out)
}

// runOverloadBench measures goodput, p99 and shed rate at growing
// multiples of server capacity and writes BENCH_OVERLOAD.json.
func runOverloadBench(entities, requests int, out string) {
	fmt.Printf("== overload bench: %d entities, %d requests per level ==\n", entities, requests)
	res, err := experiments.RunOverloadBench(entities, requests)
	if err != nil {
		log.Fatalf("bench-overload: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	fmt.Printf("capacity: %d in-flight slots, %dµs sleep + %dµs burn per request\n", res.MaxInFlight, res.DelayMicros, res.BurnMicros)
	for _, p := range res.Points {
		fmt.Println(p.Describe())
	}
	fmt.Printf("wrote %s\n", out)
}

// runStartupBench measures decode-vs-mmap cold start and writes
// BENCH_STARTUP.json.
func runStartupBench(entities int, out string) {
	fmt.Printf("== snapshot startup bench: base %d entities ==\n", entities)
	res, err := experiments.RunStartupBench(entities)
	if err != nil {
		log.Fatalf("bench-startup: %v", err)
	}
	if err := writeJSONFile(out, res.WriteJSON); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	for _, s := range res.Sizes {
		fmt.Printf("%7d entities (%d nodes, %d edges): decode %7.1fms / %5.1f MiB heap — map %6.2fms / %5.2f MiB heap\n",
			s.Entities, s.Nodes, s.Edges,
			s.DecodeMs, float64(s.DecodeHeapBytes)/(1<<20),
			s.MapMs, float64(s.MapHeapBytes)/(1<<20))
	}
	fmt.Printf("largest size: mapped start %.0fx faster; growth over %dx world: decode %.1fx, mapped %.1fx\n",
		res.MapSpeedupAtLargest, len(res.Sizes)+1, res.DecodeGrowth, res.MapGrowth)
	fmt.Printf("wrote %s\n", out)
}
