// Command experiments regenerates every table and figure of the
// paper's evaluation over a synthetic encyclopedia world (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	experiments [-entities N] [-all] [-table1] [-table2] [-sources]
//	            [-predicates] [-qa] [-neural] [-ablation] [-figure3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cnprobase/internal/core"
	"cnprobase/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		entities  = flag.Int("entities", 8000, "synthetic world size (entities)")
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "E1: Table I taxonomy comparison")
		table2    = flag.Bool("table2", false, "E2: Table II API workload")
		sources   = flag.Bool("sources", false, "E3/E4: per-source precision")
		preds     = flag.Bool("predicates", false, "E6: predicate discovery")
		qaFlag    = flag.Bool("qa", false, "E5: QA coverage")
		neural    = flag.Bool("neural", false, "E7: copy-mechanism ablation")
		ablation  = flag.Bool("ablation", false, "A1: verification ablation")
		figure3   = flag.Bool("figure3", false, "F3: separation algorithm walkthrough")
		apiCalls  = flag.Int("api-calls", 20000, "Table II workload size")
		questions = flag.Int("questions", 23472, "QA dataset size (paper: 23472)")
	)
	flag.Parse()
	if !*all && !*table1 && !*table2 && !*sources && !*preds && !*qaFlag && !*neural && !*ablation && !*figure3 {
		*all = true
	}

	fmt.Printf("== building suite: %d entities ==\n", *entities)
	suite, err := experiments.NewSuite(*entities, core.DefaultOptions())
	if err != nil {
		log.Fatalf("building suite: %v", err)
	}
	fmt.Print(suite.Summary())

	if *all || *table1 {
		fmt.Println("\n== E1: Table I — comparison with other taxonomies ==")
		out, _ := suite.Table1()
		fmt.Print(out)
	}
	if *all || *table2 {
		fmt.Println("\n== E2: Table II — APIs and usage ==")
		out, _, err := suite.Table2(*apiCalls)
		if err != nil {
			log.Fatalf("table2: %v", err)
		}
		fmt.Print(out)
	}
	if *all || *sources {
		fmt.Println("\n== E3/E4: per-source precision ==")
		out, _ := suite.PerSource()
		fmt.Print(out)
	}
	if *all || *preds {
		fmt.Println("\n== E6: predicate discovery ==")
		out, _, _ := suite.Predicates()
		fmt.Print(out)
	}
	if *all || *qaFlag {
		fmt.Println("\n== E5: QA coverage ==")
		out, _ := suite.QA(*questions)
		fmt.Print(out)
	}
	if *all || *neural {
		fmt.Println("\n== E7: neural generation — copy mechanism ablation ==")
		out, _, err := suite.Neural(3000, 4)
		if err != nil {
			log.Fatalf("neural: %v", err)
		}
		fmt.Print(out)
	}
	if *all || *ablation {
		fmt.Println("\n== A1: verification ablation ==")
		out, _, err := suite.Ablation()
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		fmt.Print(out)
	}
	if *all || *figure3 {
		fmt.Println("\n== F3: separation algorithm walkthrough (Figure 3) ==")
		fmt.Print(suite.SeparationDemo([]string{
			"蚂蚁金服首席战略官",
			"中国香港男演员",
			"著名女歌手",
			"清河大学教授",
		}))
		fmt.Println("\n== A2: separation algorithm vs suffix heuristic ==")
		out, _ := suite.SeparationVsSuffix()
		fmt.Print(out)
	}
	os.Exit(0)
}
