package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRoundTrip exercises gen → build → query end to end through
// the compiled binary.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cnprobase-cli")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	corpus := filepath.Join(dir, "corpus.jsonl")
	tax := filepath.Join(dir, "taxonomy.json")
	snap := filepath.Join(dir, "taxonomy.snap")

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("gen", "-entities", "400", "-out", corpus)
	if !strings.Contains(out, "pages") {
		t.Errorf("gen output: %s", out)
	}
	out = run("build", "-in", corpus, "-out", tax, "-save", snap, "-no-neural", "-workers", "8", "-shards", "32")
	if !strings.Contains(out, "isA relations") {
		t.Errorf("build output: %s", out)
	}
	if !strings.Contains(out, "8 workers, 32 shards") {
		t.Errorf("build output missing concurrency settings: %s", out)
	}
	if !strings.Contains(out, "wrote snapshot") {
		t.Errorf("build output missing snapshot line: %s", out)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Errorf("snapshot file %s: err=%v, size=%v", snap, err, fi)
	}
	out = run("query", "-tax", tax)
	if !strings.Contains(out, "entities=") {
		t.Errorf("query output: %s", out)
	}
	out = run("query", "-tax", tax, "-hyponyms", "人物", "-limit", "3")
	if strings.TrimSpace(out) == "" {
		t.Error("query -hyponyms returned nothing")
	}
}
