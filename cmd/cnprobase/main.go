// Command cnprobase is the pipeline CLI: generate a synthetic
// encyclopedia dump, build a taxonomy from a dump, and query the
// result.
//
// Usage:
//
//	cnprobase gen   -entities 8000 -out corpus.jsonl
//	cnprobase build -in corpus.jsonl -out taxonomy.json [-no-neural] [-workers 8] [-shards 16]
//	cnprobase build -in corpus.jsonl -save taxonomy.snap    # binary serving snapshot
//	cnprobase build -in corpus.jsonl -cpuprofile cpu.pprof -memprofile mem.pprof
//	cnprobase query -tax taxonomy.json -hypernyms 刘德华
//	cnprobase query -tax taxonomy.json -hyponyms 演员 -limit 20
//
// build fans the construction pipeline out over -workers goroutines
// (0 = one per CPU, 1 = sequential) assembling into a -shards-way
// sharded taxonomy store; any worker count produces the same taxonomy.
// -save additionally writes the complete serving state (taxonomy +
// mention index + build report) as a binary snapshot that
// `cnpserver -load` starts from without re-running the pipeline —
// memory-mapping it directly under the version-3 layout. The write is
// atomic (temp file, fsync, rename, directory fsync): rebuilding over
// a snapshot a live server is mapping or SIGHUP-reloading can never
// expose a torn file.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"cnprobase"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/synth"
)

// saveSnapshotAtomic writes the snapshot through a temp file in the
// target directory, fsyncs it, renames it over path and fsyncs the
// directory — a crash at any point leaves either the old snapshot or
// the new one, never a torn file. cnpserver may be serving (and
// SIGHUP-reloading, or mmap-serving) the previous snapshot at this
// path; the rename swaps it atomically under that reader.
func saveSnapshotAtomic(path string, res *cnprobase.Result) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".cnpsnap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if err := cnprobase.SaveSnapshot(f, res); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnprobase: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "build":
		cmdBuild(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cnprobase <gen|build|query> [flags]")
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	entities := fs.Int("entities", 8000, "number of entities")
	seed := fs.Int64("seed", 1, "world seed")
	out := fs.String("out", "corpus.jsonl", "output dump path")
	_ = fs.Parse(args)

	cfg := synth.DefaultConfig()
	cfg.Entities = *entities
	cfg.Seed = *seed
	w, err := synth.Generate(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("create %s: %v", *out, err)
	}
	if err := w.Corpus().WriteJSONL(f); err != nil {
		log.Fatalf("write dump: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("close %s: %v", *out, err)
	}
	c := w.Corpus()
	fmt.Printf("wrote %s: %d pages, %d abstracts, %d triples, %d tags\n",
		*out, c.Len(), c.AbstractCount(), c.TripleCount(), c.TagCount())
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "corpus.jsonl", "input dump path")
	out := fs.String("out", "taxonomy.json", "output taxonomy path")
	save := fs.String("save", "", "also write a binary serving snapshot (for cnpserver -load)")
	noNeural := fs.Bool("no-neural", false, "skip the neural (abstract) extractor")
	workers := fs.Int("workers", 0, "pipeline worker pool size (0 = one per CPU, 1 = sequential)")
	shards := fs.Int("shards", 0, "taxonomy store shard count (0 = default)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the build to this file")
	memProfile := fs.String("memprofile", "", "write a post-build heap profile to this file")
	_ = fs.Parse(args)

	// log.Fatalf skips defers, so the CPU profile is stopped through an
	// idempotent closure every exit path runs — a failing build (often
	// the very run being profiled) still leaves a valid profile.
	stopCPUProfile := func() {}
	fail := func(format string, args ...any) {
		stopCPUProfile()
		log.Fatalf(format, args...)
	}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("create %s: %v", *cpuProfile, err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatalf("start cpu profile: %v", err)
		}
		stopped := false
		stopCPUProfile = func() {
			if !stopped {
				stopped = true
				pprof.StopCPUProfile()
				if err := pf.Close(); err != nil {
					log.Printf("close %s: %v", *cpuProfile, err)
				}
			}
		}
		defer stopCPUProfile()
	}

	f, err := os.Open(*in)
	if err != nil {
		fail("open %s: %v", *in, err)
	}
	corpus, err := cnprobase.ReadCorpus(f)
	f.Close()
	if err != nil {
		fail("read corpus: %v", err)
	}
	opts := cnprobase.DefaultOptions()
	if *noNeural {
		opts.EnableNeural = false
	}
	opts.Workers = *workers
	opts.Shards = *shards
	res, err := cnprobase.Build(corpus, opts)
	if err != nil {
		fail("build: %v", err)
	}
	stopCPUProfile() // the build is what the CPU profile measures
	st := res.Report.Stats
	fmt.Printf("built taxonomy (%d workers, %d shards): %d entities, %d concepts, %d isA relations\n",
		res.Report.Workers, res.Report.Shards, st.Entities, st.Concepts, st.IsARelations)
	fmt.Printf("verification: kept %d of %d candidates\n",
		res.Report.Verification.Kept, res.Report.Verification.Input)
	g, err := os.Create(*out)
	if err != nil {
		fail("create %s: %v", *out, err)
	}
	if err := res.Taxonomy.WriteJSON(g); err != nil {
		fail("write taxonomy: %v", err)
	}
	if err := g.Close(); err != nil {
		fail("close %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)
	if *save != "" {
		if err := saveSnapshotAtomic(*save, res); err != nil {
			fail("write snapshot: %v", err)
		}
		fmt.Printf("wrote snapshot %s\n", *save)
	}
	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			fail("create %s: %v", *memProfile, err)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fail("write heap profile: %v", err)
		}
		if err := mf.Close(); err != nil {
			fail("close %s: %v", *memProfile, err)
		}
		fmt.Printf("wrote heap profile %s\n", *memProfile)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	taxPath := fs.String("tax", "taxonomy.json", "taxonomy path")
	hypernyms := fs.String("hypernyms", "", "entity/concept to list hypernyms of")
	hyponyms := fs.String("hyponyms", "", "concept to list hyponyms of")
	limit := fs.Int("limit", 20, "max hyponyms to print")
	_ = fs.Parse(args)

	f, err := os.Open(*taxPath)
	if err != nil {
		log.Fatalf("open %s: %v", *taxPath, err)
	}
	tax, err := cnprobase.ReadTaxonomy(f)
	f.Close()
	if err != nil {
		log.Fatalf("read taxonomy: %v", err)
	}
	// Queries go through the frozen serving view — the same read path
	// cnpserver answers from.
	view := (&cnprobase.Result{Taxonomy: tax}).Freeze()
	switch {
	case *hypernyms != "":
		// Bare titles may be ambiguous: try the exact node first, then
		// disambiguated IDs sharing the title.
		hs := view.Hypernyms(*hypernyms)
		if len(hs) == 0 {
			for _, n := range view.Nodes() {
				if t, _ := encyclopedia.ParseEntityID(n); t == *hypernyms {
					fmt.Printf("%s → %v\n", n, view.Hypernyms(n))
				}
			}
			return
		}
		fmt.Printf("%s → %v\n", *hypernyms, hs)
	case *hyponyms != "":
		for _, h := range view.Hyponyms(*hyponyms, *limit) {
			fmt.Println(h)
		}
	default:
		st := view.Stats()
		fmt.Printf("entities=%d concepts=%d isA=%d\n", st.Entities, st.Concepts, st.IsARelations)
	}
}
