package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cnprobase"
)

// buildServerBinary compiles cnpserver once per test binary.
var (
	binOnce sync.Once
	binPath string
	binErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if binPath != "" {
		os.RemoveAll(filepath.Dir(binPath))
	}
	os.Exit(code)
}

func serverBinary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cnpserver-test-*")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "cnpserver")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// writeSnapshot builds a small world and saves its serving state,
// returning the snapshot path and the build result for comparison.
func writeSnapshot(t *testing.T) (string, *cnprobase.Result) {
	t.Helper()
	wcfg := cnprobase.DefaultWorldConfig()
	wcfg.Entities = 300
	w, err := cnprobase.GenerateWorld(wcfg)
	if err != nil {
		t.Fatalf("GenerateWorld: %v", err)
	}
	opts := cnprobase.DefaultOptions()
	opts.EnableNeural = false
	res, err := cnprobase.Build(w.Corpus(), opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "taxonomy.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create snapshot: %v", err)
	}
	if err := cnprobase.SaveSnapshot(f, res); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close snapshot: %v", err)
	}
	return path, res
}

// startServer launches the binary, waits for the "serving ... on"
// line, and returns the base URL plus a shutdown func.
func startServer(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(serverBinary(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	stop := func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on "); strings.HasPrefix(line, "serving ") && i >= 0 {
				addrCh <- strings.TrimSpace(line[i+4:])
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			stop()
			t.Fatal("server exited before announcing its address")
		}
		return "http://" + addr, stop
	case <-time.After(30 * time.Second):
		stop()
		t.Fatal("timed out waiting for the server to announce its address")
	}
	panic("unreachable")
}

// TestServeLoadedSnapshot is the -load happy path: the server starts
// from a snapshot without running the pipeline and answers the three
// APIs exactly like the build it was saved from.
func TestServeLoadedSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, res := writeSnapshot(t)
	base, stop := startServer(t, "-load", snap)
	defer stop()

	// Pick an entity that has hypernyms so the comparison is not
	// vacuous.
	var entity string
	for _, n := range res.Taxonomy.Nodes() {
		if len(res.Taxonomy.Hypernyms(n)) > 0 && len(res.Mentions.Lookup(n)) > 0 {
			entity = n
			break
		}
	}
	if entity == "" {
		t.Fatal("no entity with hypernyms in the built world")
	}

	get := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}

	var concept struct {
		Hypernyms []string `json:"hypernyms"`
	}
	get("/api/getConcept?entity="+entity, &concept)
	if want := fmt.Sprint(res.Taxonomy.Hypernyms(entity)); fmt.Sprint(concept.Hypernyms) != want {
		t.Fatalf("getConcept(%q) = %v, want %v", entity, concept.Hypernyms, want)
	}

	var men struct {
		Entities []string `json:"entities"`
	}
	get("/api/men2ent?mention="+entity, &men)
	if want := fmt.Sprint(res.Mentions.Lookup(entity)); fmt.Sprint(men.Entities) != want {
		t.Errorf("men2ent(%q) = %v, want %v", entity, men.Entities, want)
	}

	hyper := concept.Hypernyms[0]
	var ent struct {
		Hyponyms []string `json:"hyponyms"`
	}
	get("/api/getEntity?concept="+hyper, &ent)
	if want := fmt.Sprint(res.Taxonomy.Hyponyms(hyper, 0)); fmt.Sprint(ent.Hyponyms) != want {
		t.Errorf("getEntity(%q) = %v, want %v", hyper, ent.Hyponyms, want)
	}
}

// syncBuffer is a mutex-guarded buffer for capturing a child
// process's stderr while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServerCapture is startServer with stderr captured instead of
// inherited, for tests asserting on log output.
func startServerCapture(t *testing.T, stderr *syncBuffer, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(serverBinary(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on "); strings.HasPrefix(line, "serving ") && i >= 0 {
				addrCh <- strings.TrimSpace(line[i+4:])
				return
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("server exited before announcing its address; stderr:\n%s", stderr.String())
		}
		return "http://" + addr, cmd
	case <-deadline:
		t.Fatal("timed out waiting for the server to announce its address")
	}
	panic("unreachable")
}

// TestSighupHotReload drives the zero-downtime reload path: overwrite
// the snapshot file with an extended taxonomy, send SIGHUP, and watch
// the new edge become visible without restarting the process.
func TestSighupHotReload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, res := writeSnapshot(t)
	var stderr syncBuffer
	base, cmd := startServerCapture(t, &stderr, "-load", snap)

	get := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var ent struct {
		Hyponyms []string `json:"hyponyms"`
	}
	get("/api/getEntity?concept=热更新概念", &ent)
	if len(ent.Hyponyms) != 0 {
		t.Fatalf("new concept visible before reload: %v", ent.Hyponyms)
	}

	// Extend the taxonomy, overwrite the snapshot in place, reload.
	if err := res.Taxonomy.AddIsA("热更新实体（测试）", "热更新概念", cnprobase.SourceTag, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := cnprobase.SaveSnapshot(f, res); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		get("/api/getEntity?concept=热更新概念", &ent)
		if len(ent.Hyponyms) == 1 && ent.Hyponyms[0] == "热更新实体（测试）" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("new edge never became visible after SIGHUP; stderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The swap is visible over HTTP before the server writes its log
	// line, so poll for the line under the same deadline instead of
	// reading the buffer once.
	for !strings.Contains(stderr.String(), "view swapped") {
		if time.Now().After(deadline) {
			t.Errorf("reload not logged; stderr:\n%s", stderr.String())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// startServerWithIngest launches the binary with an ingestion listener
// and waits for both the serving and the ingesting address lines.
func startServerWithIngest(t *testing.T, stderr *syncBuffer, args ...string) (apiBase, ingestBase string, proc *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(serverBinary(t),
		append([]string{"-addr", "127.0.0.1:0", "-ingest", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	type addrs struct{ api, ingest string }
	addrCh := make(chan addrs, 1)
	go func() {
		var got addrs
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on "); i >= 0 {
				switch {
				case strings.HasPrefix(line, "serving "):
					got.api = strings.TrimSpace(line[i+4:])
				case strings.HasPrefix(line, "ingesting "):
					got.ingest = strings.TrimSpace(line[i+4:])
				}
			}
			if got.api != "" && got.ingest != "" {
				addrCh <- got
				return
			}
		}
		close(addrCh)
	}()
	select {
	case got, ok := <-addrCh:
		if !ok {
			t.Fatalf("server exited before announcing its addresses; stderr:\n%s", stderr.String())
		}
		return "http://" + got.api, "http://" + got.ingest, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the server to announce its addresses")
	}
	panic("unreachable")
}

// TestIngestEndpointServesNewEdges drives continuous ingestion over
// HTTP: a running server (started from an evidence-carrying snapshot)
// accepts a JSONL crawl batch on the -ingest listener and serves the
// new edges on the API listener without restarting — the ingestion
// counterpart of the SIGHUP hot-reload test.
func TestIngestEndpointServesNewEdges(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, res := writeSnapshot(t)
	var stderr syncBuffer
	apiBase, ingestBase, _ := startServerWithIngest(t, &stderr, "-load", snap)

	get := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(apiBase + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
	}

	// An existing, surviving concept keeps the delta's tag candidate
	// through verification.
	concept := res.Kept[0].Hyper
	const newTitle = "热更新摄取实体"
	var ent struct {
		Hypernyms []string `json:"hypernyms"`
	}
	get("/api/getConcept?entity="+newTitle, &ent)
	if len(ent.Hypernyms) != 0 {
		t.Fatalf("new entity visible before ingestion: %v", ent.Hypernyms)
	}

	page, err := json.Marshal(map[string]any{"title": newTitle, "tags": []string{concept}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ingestBase+"/ingest", "application/x-ndjson", bytes.NewReader(append(page, '\n')))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d: %s\nstderr:\n%s", resp.StatusCode, body, stderr.String())
	}
	var rep struct {
		Pages int `json:"pages"`
	}
	if err := json.Unmarshal(body, &rep); err != nil || rep.Pages != 1 {
		t.Fatalf("ingest response %s (err %v), want pages=1", body, err)
	}

	// The swap happens before the ingest response returns, so the API
	// serves the new edge immediately — no restart, no downtime.
	get("/api/getConcept?entity="+newTitle, &ent)
	found := false
	for _, h := range ent.Hypernyms {
		if h == concept {
			found = true
		}
	}
	if !found {
		t.Fatalf("getConcept(%q) = %v after ingest, want %q; stderr:\n%s", newTitle, ent.Hypernyms, concept, stderr.String())
	}
	var men struct {
		Entities []string `json:"entities"`
	}
	get("/api/men2ent?mention="+newTitle, &men)
	if len(men.Entities) == 0 {
		t.Errorf("men2ent(%q) empty after ingest", newTitle)
	}
}

// copyFile duplicates a file into dir under name.
func copyFile(t *testing.T, src, dir, name string) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("read %s: %v", src, err)
	}
	dst := filepath.Join(dir, name)
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", dst, err)
	}
	return dst
}

// postPage ingests one single-page batch and returns the HTTP status.
func postPage(t *testing.T, ingestBase, title, concept string) int {
	t.Helper()
	page, err := json.Marshal(map[string]any{"title": title, "tags": []string{concept}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ingestBase+"/ingest", "application/x-ndjson", bytes.NewReader(append(page, '\n')))
	if err != nil {
		t.Fatalf("POST /ingest %q: %v", title, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestCrashRecoveryEquivalence is the end-to-end durability pin: drive
// K batches into a WAL-backed server, SIGKILL it mid-stream (after the
// second acknowledgment), restart it from the same snapshot + WAL,
// finish the stream, and require its API responses to be byte-identical
// to a reference server that ingested the same K batches without ever
// crashing. Every /ingest 200 was fsynced before it was sent, so the
// kill must cost nothing.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, res := writeSnapshot(t)
	concept := res.Kept[0].Hyper
	dir := t.TempDir()
	refSnap := copyFile(t, snap, dir, "ref.snap")
	crashSnap := copyFile(t, snap, dir, "crash.snap")
	walDir := filepath.Join(dir, "wal")
	titles := []string{"崩溃恢复一", "崩溃恢复二", "崩溃恢复三", "崩溃恢复四"}

	// Reference: volatile ingester, never crashes, sees all 4 batches.
	var refErr syncBuffer
	refAPI, refIngest, _ := startServerWithIngest(t, &refErr, "-load", refSnap)
	for _, title := range titles {
		if code := postPage(t, refIngest, title, concept); code != http.StatusOK {
			t.Fatalf("reference ingest %q status = %d; stderr:\n%s", title, code, refErr.String())
		}
	}

	// Crash server: WAL-backed, killed after acknowledging 2 of 4.
	var crashErr syncBuffer
	_, crashIngest, proc := startServerWithIngest(t, &crashErr,
		"-load", crashSnap, "-wal", walDir, "-compact-every", "0")
	for _, title := range titles[:2] {
		if code := postPage(t, crashIngest, title, concept); code != http.StatusOK {
			t.Fatalf("pre-crash ingest %q status = %d; stderr:\n%s", title, code, crashErr.String())
		}
	}
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks run
		t.Fatalf("SIGKILL: %v", err)
	}
	_, _ = proc.Process.Wait()

	// Restart from the same snapshot + WAL; the tail replays, then the
	// stream finishes.
	var recoverErr syncBuffer
	recAPI, recIngest, _ := startServerWithIngest(t, &recoverErr,
		"-load", crashSnap, "-wal", walDir, "-compact-every", "0")
	if !strings.Contains(recoverErr.String(), "replayed 2 wal batches") {
		t.Fatalf("restart did not replay the 2 acknowledged batches; stderr:\n%s", recoverErr.String())
	}
	for _, title := range titles[2:] {
		if code := postPage(t, recIngest, title, concept); code != http.StatusOK {
			t.Fatalf("post-recovery ingest %q status = %d; stderr:\n%s", title, code, recoverErr.String())
		}
	}

	// Byte-identical equivalence across the three public APIs: the
	// crashed-and-recovered server must be indistinguishable from the
	// one that never died.
	probes := []string{"/api/getEntity?concept=" + concept}
	for _, title := range titles {
		probes = append(probes,
			"/api/getConcept?entity="+title,
			"/api/men2ent?mention="+title)
	}
	fetch := func(base, probe string) []byte {
		t.Helper()
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatalf("GET %s: %v", probe, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", probe, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", probe, err)
		}
		return body
	}
	for _, probe := range probes {
		want := fetch(refAPI, probe)
		got := fetch(recAPI, probe)
		if !bytes.Equal(got, want) {
			t.Errorf("recovered server diverges on %s:\n  recovered: %s\n  reference: %s", probe, got, want)
		}
	}
}

// TestWalFlagValidation pins the -wal flag contract: it needs both the
// snapshot to compact into and the ingest listener.
func TestWalFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	out, err := exec.Command(serverBinary(t), "-addr", "127.0.0.1:0", "-wal", t.TempDir()).CombinedOutput()
	if err == nil {
		t.Fatalf("-wal without -load/-ingest accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "-wal requires") {
		t.Errorf("unexpected error output: %s", out)
	}
}

// TestIngestRequiresMutableState pins the flag contract: -ingest with
// -tax has no build state to update and must refuse at startup.
func TestIngestRequiresMutableState(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	taxPath := filepath.Join(t.TempDir(), "t.json")
	_, res := writeSnapshot(t)
	f, err := os.Create(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Taxonomy.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := exec.Command(serverBinary(t), "-addr", "127.0.0.1:0", "-ingest", "127.0.0.1:0", "-tax", taxPath).CombinedOutput()
	if err == nil {
		t.Fatalf("-ingest with -tax accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "-ingest needs the mutable build state") {
		t.Errorf("unexpected error output: %s", out)
	}
}

// TestShutdownLogsLatency pins the satellite: on SIGTERM the server
// drains and logs per-endpoint p50/p99 latency before exiting.
func TestShutdownLogsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, _ := writeSnapshot(t)
	var stderr syncBuffer
	base, cmd := startServerCapture(t, &stderr, "-load", snap)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(base + "/api/men2ent?mention=任意")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "shutting down") {
		t.Errorf("shutdown not logged:\n%s", out)
	}
	if !strings.Contains(out, "latency men2ent") || !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Errorf("latency summary missing from shutdown log:\n%s", out)
	}
}

// TestLoadCorruptSnapshot wants a clean, diagnosable exit — not a
// crash, not a server — when the snapshot file is damaged.
func TestLoadCorruptSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, _ := writeSnapshot(t)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	corrupt := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(serverBinary(t), "-addr", "127.0.0.1:0", "-load", corrupt).CombinedOutput()
	if err == nil {
		t.Fatalf("server accepted a corrupt snapshot:\n%s", out)
	}
	if !strings.Contains(string(out), "load snapshot") {
		t.Errorf("error output does not mention the snapshot: %s", out)
	}
}

// TestFlagValidation covers flag parsing: unknown flags exit with the
// flag package's status 2, and -load/-tax are mutually exclusive.
func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	out, err := exec.Command(serverBinary(t), "-no-such-flag").CombinedOutput()
	if err == nil {
		t.Fatalf("unknown flag accepted:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("unknown flag: err = %v, want exit status 2", err)
	}
	if !strings.Contains(string(out), "Usage") {
		t.Errorf("unknown flag output missing usage: %s", out)
	}

	out, err = exec.Command(serverBinary(t), "-load", "a.snap", "-tax", "b.json").CombinedOutput()
	if err == nil {
		t.Fatalf("-load with -tax accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "mutually exclusive") {
		t.Errorf("-load/-tax error not reported: %s", out)
	}
}
