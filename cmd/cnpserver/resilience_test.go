package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// getStatus fetches a path and returns just the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestProbes pins the orchestration endpoints on a running binary:
// /healthz and /readyz both answer 200 JSON once the server announces
// its address (serving state loaded).
func TestProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, _ := writeSnapshot(t)
	base, stop := startServer(t, "-load", snap)
	defer stop()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d (%s), want 200", path, resp.StatusCode, body)
		}
		var ok struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &ok); err != nil || ok.Status != "ok" {
			t.Fatalf("GET %s body = %q", path, body)
		}
	}
}

// TestOverloadFlagsShed proves the admission flags reach the serving
// plane: with one slot, zero wait and a slow handler, a saturated
// request is shed with 429 + Retry-After while /api/stats (exempt)
// still answers and reports the shed.
func TestOverloadFlagsShed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, _ := writeSnapshot(t)
	base, stop := startServer(t, "-load", snap,
		"-max-inflight", "1", "-admit-wait", "0", "-chaos-delay", "2s")
	defer stop()

	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/api/men2ent?mention=任意")
		if err != nil {
			slowDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()

	// Wait for the slot to be held, then watch the next request shed.
	var code int
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/api/getConcept?entity=任意")
		if err != nil {
			t.Fatalf("GET during overload: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		code = resp.StatusCode
		if code == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("429 body %q is not the JSON error shape", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed a 429; last code %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if code := getStatus(t, base+"/api/stats"); code != http.StatusOK {
		t.Fatalf("/api/stats during overload = %d, want 200", code)
	}
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("admitted slow request = %d, want 200", code)
	}
}

// TestSigtermDrainsSlowQuery is the graceful-drain contract: SIGTERM
// flips /readyz to 503 immediately (so load balancers stop routing)
// while a deliberately slow in-flight query still completes with 200,
// and the process then exits cleanly.
func TestSigtermDrainsSlowQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, _ := writeSnapshot(t)
	var stderr syncBuffer
	base, cmd := startServerCapture(t, &stderr, "-load", snap,
		"-chaos-delay", "3s", "-drain-grace", "1500ms", "-drain-timeout", "30s")

	// Launch the slow query; every /api request carries the 3s chaos
	// delay, so it is guaranteed to still be in flight at SIGTERM time.
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/api/men2ent?mention=任意")
		if err != nil {
			slowDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	// The probe endpoints skip the chaos delay, so readyz==200 here
	// also proves the slow request above has been accepted (same mux,
	// announced listener).
	if code := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before SIGTERM = %d, want 200", code)
	}
	time.Sleep(300 * time.Millisecond) // let the slow GET land in its handler

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// During the drain grace the listener still accepts: /readyz must
	// answer 503 so the load balancer rotates this replica out.
	readyCode := -1
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // grace elapsed and the listener closed before we sampled
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		readyCode = resp.StatusCode
		if readyCode == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if readyCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", readyCode)
	}

	// The slow query drains to completion despite the shutdown.
	select {
	case code := <-slowDone:
		if code != http.StatusOK {
			t.Fatalf("in-flight query across SIGTERM = %d, want 200; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight query never completed during drain")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "shutting down") {
		t.Errorf("shutdown not logged:\n%s", out)
	}
}

// TestSigtermDrainsInflightIngest is the durability half of graceful
// shutdown: a /ingest batch whose body is still arriving when SIGTERM
// lands must complete with a 200 — and that 200 must mean fsynced, so
// a restart from the same snapshot + WAL replays the batch and serves
// its edge.
func TestSigtermDrainsInflightIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, res := writeSnapshot(t)
	concept := res.Kept[0].Hyper
	const title = "排水期间摄取实体"
	walDir := filepath.Join(t.TempDir(), "wal")

	var stderr syncBuffer
	apiBase, ingestBase, cmd := startServerWithIngest(t, &stderr,
		"-load", snap, "-wal", walDir, "-compact-every", "0",
		"-drain-grace", "200ms", "-drain-timeout", "30s")
	_ = apiBase

	page, err := json.Marshal(map[string]any{"title": title, "tags": []string{concept}})
	if err != nil {
		t.Fatal(err)
	}
	body := append(page, '\n')

	// Hand-rolled request so the body can straddle the SIGTERM: send
	// the headers plus the first byte, signal, then finish the body.
	conn, err := net.Dial("tcp", strings.TrimPrefix(ingestBase, "http://"))
	if err != nil {
		t.Fatalf("dial ingest: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /ingest HTTP/1.1\r\nHost: ingest\r\nContent-Type: application/x-ndjson\r\nContent-Length: %d\r\nConnection: close\r\n\r\n", len(body))
	if _, err := conn.Write(body[:1]); err != nil {
		t.Fatalf("write first body byte: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // let the handler enter ReadAll

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // shutdown is now underway
	if _, err := conn.Write(body[1:]); err != nil {
		t.Fatalf("write body remainder during drain: %v", err)
	}
	respBytes, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read in-flight ingest response: %v\nstderr:\n%s", err, stderr.String())
	}
	resp := string(respBytes)
	if !strings.HasPrefix(resp, "HTTP/1.1 200") {
		t.Fatalf("in-flight ingest across SIGTERM got:\n%s\nstderr:\n%s", resp, stderr.String())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
	}

	// The 200 promised durability: a restart must replay the batch.
	var restartErr syncBuffer
	restartAPI, _, _ := startServerWithIngest(t, &restartErr,
		"-load", snap, "-wal", walDir, "-compact-every", "0")
	if !strings.Contains(restartErr.String(), "replayed 1 wal batches") {
		t.Fatalf("restart did not replay the drained batch; stderr:\n%s", restartErr.String())
	}
	resp2, err := http.Get(restartAPI + "/api/getConcept?entity=" + title)
	if err != nil {
		t.Fatalf("GET after restart: %v", err)
	}
	var got struct {
		Hypernyms []string `json:"hypernyms"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp2.Body.Close()
	found := false
	for _, h := range got.Hypernyms {
		if h == concept {
			found = true
		}
	}
	if !found {
		t.Fatalf("edge from the drained batch missing after restart: getConcept(%q) = %v", title, got.Hypernyms)
	}
}

// TestConcurrentProbesAndQueriesDuringIngest hammers probes, queries
// and ingest batches at a live binary simultaneously — a smoke screen
// for the full serving plane under mixed load.
func TestConcurrentProbesAndQueriesDuringIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: compiles and runs the binary")
	}
	snap, res := writeSnapshot(t)
	concept := res.Kept[0].Hyper
	var stderr syncBuffer
	apiBase, ingestBase, _ := startServerWithIngest(t, &stderr, "-load", snap)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if code := postPage(t, ingestBase, fmt.Sprintf("混合负载实体%d·%d", i, j), concept); code != http.StatusOK && code != http.StatusTooManyRequests {
					t.Errorf("ingest under load = %d", code)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if code := getStatus(t, apiBase+"/api/men2ent?mention=任意"); code != http.StatusOK {
					t.Errorf("query under load = %d", code)
					return
				}
				if code := getStatus(t, apiBase+"/readyz"); code != http.StatusOK {
					t.Errorf("/readyz under load = %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
}
