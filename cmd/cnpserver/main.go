// Command cnpserver serves a taxonomy over HTTP with the paper's three
// APIs (Table II): men2ent, getConcept, getEntity, plus /api/stats.
//
// Usage:
//
//	cnpserver -addr :8080 -load taxonomy.snap         # serve a binary snapshot (fastest start)
//	cnpserver -addr :8080 -tax taxonomy.json          # serve a JSON taxonomy
//	cnpserver -addr :8080 -entities 4000              # build in-memory demo world
//	cnpserver -entities 4000 -workers 8 -shards 32    # parallel demo build
//
// -load is the production path: the snapshot (written by
// `cnprobase build -save`) carries the complete serving state —
// taxonomy, mention index, build report — so the server skips the
// generation + verification pipeline entirely and is query-ready in
// milliseconds. The demo build fans out over -workers goroutines (0 =
// one per CPU) into a -shards-way sharded taxonomy store.
//
// Mentions come from the snapshot's full index with -load and from the
// pipeline with the demo build; the -tax JSON path indexes entity IDs
// and bare titles only (JSON taxonomies do not carry the mention
// index).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"cnprobase"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnpserver: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		loadPath = flag.String("load", "", "binary snapshot path (from `cnprobase build -save`)")
		taxPath  = flag.String("tax", "", "taxonomy JSON path")
		entities = flag.Int("entities", 4000, "demo world size when -load and -tax are empty")
		workers  = flag.Int("workers", 0, "worker pool size for the demo build and snapshot decode (0 = one per CPU, 1 = sequential)")
		shards   = flag.Int("shards", 0, "taxonomy store shard count (0 = default)")
	)
	flag.Parse()
	if *loadPath != "" && *taxPath != "" {
		log.Fatal("-load and -tax are mutually exclusive")
	}

	var (
		tax      *cnprobase.Taxonomy
		mentions *cnprobase.MentionIndex
	)
	switch {
	case *loadPath != "":
		start := time.Now()
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatalf("open %s: %v", *loadPath, err)
		}
		res, err := cnprobase.LoadSnapshotSharded(f, *workers, *shards)
		f.Close()
		if err != nil {
			log.Fatalf("load snapshot %s: %v", *loadPath, err)
		}
		tax, mentions = res.Taxonomy, res.Mentions
		st := res.Report.Stats
		log.Printf("loaded snapshot in %v: %d entities, %d concepts, %d isA, %d mentions",
			time.Since(start).Round(time.Millisecond),
			st.Entities, st.Concepts, st.IsARelations, mentions.Size())
	case *taxPath != "":
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open %s: %v", *taxPath, err)
		}
		tax, err = cnprobase.ReadTaxonomy(f)
		f.Close()
		if err != nil {
			log.Fatalf("read taxonomy: %v", err)
		}
		mentions = taxonomy.NewMentionIndex()
		for _, n := range tax.Nodes() {
			if tax.Kind(n) == taxonomy.KindEntity {
				mentions.Add(n, n)
				if t, _ := encyclopedia.ParseEntityID(n); t != "" {
					mentions.Add(t, n)
				}
			}
		}
	default:
		log.Printf("building demo world with %d entities...", *entities)
		start := time.Now()
		wcfg := cnprobase.DefaultWorldConfig()
		wcfg.Entities = *entities
		w, err := cnprobase.GenerateWorld(wcfg)
		if err != nil {
			log.Fatalf("generate world: %v", err)
		}
		opts := cnprobase.DefaultOptions()
		opts.Workers = *workers
		opts.Shards = *shards
		res, err := cnprobase.Build(w.Corpus(), opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		tax, mentions = res.Taxonomy, res.Mentions
		st := res.Report.Stats
		log.Printf("built in %v (%d workers, %d shards): %d entities, %d concepts, %d isA",
			time.Since(start).Round(time.Millisecond), res.Report.Workers, res.Report.Shards,
			st.Entities, st.Concepts, st.IsARelations)
	}

	srv := cnprobase.NewAPIServer(tax, mentions)
	// Listen before announcing so the printed address is the bound one
	// (with ":0" the kernel picks the port; tests and scripts read it
	// back from this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	fmt.Printf("serving men2ent/getConcept/getEntity on %s\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
