// Command cnpserver serves a taxonomy over HTTP with the paper's three
// APIs (Table II): men2ent, getConcept, getEntity (plus men2entBatch
// and /api/stats), and the Section V application layer on top of them:
// conceptualize, conceptualizeBatch and qa — short-text
// conceptualization and QA-style text understanding, answered from the
// same immutable serving view as the lookup APIs (docs/API.md
// documents every route).
//
// Usage:
//
//	cnpserver -addr :8080 -load taxonomy.snap         # serve a binary snapshot (fastest start)
//	cnpserver -addr :8080 -tax taxonomy.json          # serve a JSON taxonomy
//	cnpserver -addr :8080 -entities 4000              # build in-memory demo world
//	cnpserver -entities 4000 -workers 8 -shards 32    # parallel demo build
//	cnpserver -addr :8080 -load taxonomy.snap -pprof localhost:6060
//	cnpserver -addr :8080 -load taxonomy.snap -ingest localhost:7070
//
// -pprof serves net/http/pprof on its own listener (never on the API
// port); profile a live server with
// `go tool pprof http://localhost:6060/debug/pprof/profile`.
//
// -ingest serves the continuous-ingestion admin endpoint on its own
// listener (never the API port): POST JSONL pages to /ingest and a
// single updater goroutine folds each batch into the taxonomy
// incrementally (O(delta) per batch), freezes the result and swaps the
// serving view atomically — zero-downtime never-ending extraction.
// Ingestion needs the mutable build state, so with -load the snapshot
// must carry the evidence section (any snapshot saved by this version)
// and is decoded into the build store rather than view-only; -tax
// taxonomies cannot ingest.
//
// -wal makes ingestion durable (requires -load and -ingest): every
// accepted batch is appended to a checksummed write-ahead log and
// fsynced before it is applied, startup replays the log tail past the
// snapshot's LSN, and a background compactor (period -compact-every)
// rewrites the -load snapshot and truncates the log below it. A 200
// from /ingest therefore survives SIGKILL:
//
//	cnpserver -load taxonomy.snap -ingest localhost:7070 -wal wal/
//
// -load is the production serving path: the snapshot (written by
// `cnprobase build -save`) becomes the immutable serving view — the
// mutable build store is never materialized (unless -ingest asks for
// it). Version-3 snapshots are memory-mapped and served in place, so
// the server is query-ready in constant time regardless of taxonomy
// size; older snapshots stream-decode instead. All requests are
// answered from that lock-free view.
//
// Overload safety: every listener (query, ingest, pprof) runs with
// hard ReadHeader/Read/Write/Idle timeouts and a header-size cap, so a
// slowloris client cannot pin connection goroutines; the query plane
// runs behind admission control (-max-inflight concurrent requests,
// -admit-wait bounded wait, then 429 + Retry-After), per-request
// deadlines (-query-timeout for the GET lookups, -batch-timeout for
// the POST endpoints; JSON 503 on expiry) and panic isolation (a
// handler panic is a JSON 500 on that request, never a dead process).
// A panic on the ingest updater wedges the ingester with a sticky 503
// — queries keep serving the last good view — and flips /readyz so the
// replica is rotated out. /api/stats reports shed/timeout/panic
// counters next to the latency histograms.
//
// Probes: GET /healthz answers 200 while the process is alive;
// GET /readyz answers 200 only while the server should receive
// traffic (serving state loaded and WAL replayed, not draining, the
// ingester not wedged).
//
// Signals:
//
//	SIGHUP           — hot reload: re-read the -load snapshot and swap
//	                   the serving view atomically; in-flight requests
//	                   finish on the old view, zero downtime. Ignored
//	                   (with a log line) when not serving a snapshot,
//	                   and when -ingest is active (the ingester's live
//	                   state owns the view; a file reload would be
//	                   silently reverted by the next batch).
//	SIGINT, SIGTERM  — graceful shutdown: /readyz flips to 503
//	                   immediately, -drain-grace lets load balancers
//	                   stop routing, then all listeners (query, ingest,
//	                   pprof) drain in-flight requests together
//	                   (bounded by -drain-timeout), the ingester
//	                   flushes its WAL, and per-endpoint request counts
//	                   and p50/p99 latency are logged before exit.
//
// Mentions come from the snapshot's full index with -load and from the
// pipeline with the demo build; the -tax JSON path indexes entity IDs
// and bare titles only (JSON taxonomies do not carry the mention
// index).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnprobase"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/resilience"
	"cnprobase/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnpserver: ")
	defres := cnprobase.DefaultServerResilience()
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		loadPath = flag.String("load", "", "binary snapshot path (from `cnprobase build -save`); SIGHUP hot-reloads it")
		taxPath  = flag.String("tax", "", "taxonomy JSON path")
		entities = flag.Int("entities", 4000, "demo world size when -load and -tax are empty")
		workers  = flag.Int("workers", 0, "worker pool size for the demo build and snapshot decode (0 = one per CPU, 1 = sequential)")
		shards   = flag.Int("shards", 0, "taxonomy store shard count for the demo build (0 = default)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
		ingestA  = flag.String("ingest", "", "serve the POST /ingest admin endpoint on this address (e.g. localhost:7070); off when empty")
		walDir   = flag.String("wal", "", "write-ahead-log directory for durable ingestion (requires -load and -ingest); startup replays the log tail past the snapshot's LSN")
		compactE = flag.Duration("compact-every", time.Minute, "how often the durable ingester snapshots and truncates the WAL (0 disables background compaction)")

		maxInFlight  = flag.Int("max-inflight", defres.MaxInFlight, "admission cap on concurrently executing query requests; excess is shed with 429 + Retry-After (0 disables admission control)")
		admitWait    = flag.Duration("admit-wait", defres.AdmitWait, "how long a request may wait for an admission slot before being shed")
		queryTimeout = flag.Duration("query-timeout", defres.LookupTimeout, "per-request deadline for the GET lookup endpoints; JSON 503 on expiry (0 disables)")
		batchTimeout = flag.Duration("batch-timeout", defres.BatchTimeout, "per-request deadline for the POST batch/application endpoints; JSON 503 on expiry (0 disables)")
		chaosDelay   = flag.Duration("chaos-delay", 0, "chaos knob: artificial latency injected into every query request (drain drills and overload experiments; keep 0 in production)")
		drainGrace   = flag.Duration("drain-grace", 500*time.Millisecond, "on SIGINT/SIGTERM, how long /readyz answers 503 before the listeners stop accepting, so load balancers stop routing first")
		drainTO      = flag.Duration("drain-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests across all listeners")
	)
	flag.Parse()
	if *walDir != "" && (*loadPath == "" || *ingestA == "") {
		log.Fatal("-wal requires -load (the snapshot the compactor rewrites) and -ingest")
	}
	if *loadPath != "" && *taxPath != "" {
		log.Fatal("-load and -tax are mutually exclusive")
	}

	// Every listener this process opens is registered here and drained
	// together on shutdown — no bare http.Serve anywhere, so no
	// connection is ever abandoned mid-request by an exiting main.
	var drain resilience.DrainGroup

	if *pprofA != "" {
		// A dedicated mux on a dedicated listener: profiling never
		// shares a port (or a handler namespace) with the public API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			log.Fatalf("pprof listen %s: %v", *pprofA, err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		pprofServer := resilience.PprofServerConfig().Server(mux)
		drain.Add("pprof", pprofServer)
		go func() {
			if err := pprofServer.Serve(pln); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server stopped: %v", err)
			}
		}()
	}

	var (
		view    *cnprobase.ServingView
		res     *cnprobase.Result // mutable build state; only kept when -ingest needs it
		walLog  *cnprobase.WAL    // open write-ahead log when -wal is set
		snapLSN uint64            // WAL position the loaded snapshot covers
	)
	switch {
	case *loadPath != "" && *ingestA != "":
		// Ingestion needs the mutable store + evidence, so decode the
		// full Result instead of the view-only fast path.
		start := time.Now()
		f, err := os.Open(*loadPath)
		if err != nil {
			log.Fatalf("load snapshot %s: %v", *loadPath, err)
		}
		res, snapLSN, err = cnprobase.LoadSnapshotLSN(f, *workers, *shards)
		f.Close()
		if err != nil {
			log.Fatalf("load snapshot %s: %v", *loadPath, err)
		}
		if *walDir != "" {
			// Recovery: fold in every batch the snapshot missed. The
			// replayed state is exactly what the previous process had
			// acknowledged (each batch was fsynced before its 200).
			walLog, err = cnprobase.OpenWAL(*walDir)
			if err != nil {
				log.Fatalf("open wal %s: %v", *walDir, err)
			}
			ropts := cnprobase.DefaultOptions()
			ropts.EnableNeural = false
			ropts.Workers = *workers
			var stats cnprobase.ReplayStats
			res, stats, err = cnprobase.ReplayWAL(res, walLog, snapLSN, ropts)
			if err != nil {
				log.Fatalf("replay wal %s: %v", *walDir, err)
			}
			if stats.Applied+stats.Skipped > 0 {
				log.Printf("replayed %d wal batches past LSN %d (%d skipped), now at LSN %d",
					stats.Applied, snapLSN, stats.Skipped, stats.LastLSN)
			}
		}
		view = res.Freeze()
		st := view.Stats()
		log.Printf("loaded snapshot (with build store) in %v: %d entities, %d concepts, %d isA, %d mentions",
			time.Since(start).Round(time.Millisecond),
			st.Entities, st.Concepts, st.IsARelations, view.MentionCount())
	case *loadPath != "":
		var err error
		if view, err = loadView(*loadPath, *workers); err != nil {
			log.Fatalf("load snapshot %s: %v", *loadPath, err)
		}
	case *taxPath != "":
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open %s: %v", *taxPath, err)
		}
		tax, err := cnprobase.ReadTaxonomy(f)
		f.Close()
		if err != nil {
			log.Fatalf("read taxonomy: %v", err)
		}
		mentions := taxonomy.NewMentionIndex()
		for _, n := range tax.Nodes() {
			if tax.Kind(n) == taxonomy.KindEntity {
				mentions.Add(n, n)
				if t, _ := encyclopedia.ParseEntityID(n); t != "" {
					mentions.Add(t, n)
				}
			}
		}
		jsonRes := &cnprobase.Result{Taxonomy: tax, Mentions: mentions}
		view = jsonRes.Freeze()
	default:
		log.Printf("building demo world with %d entities...", *entities)
		start := time.Now()
		wcfg := cnprobase.DefaultWorldConfig()
		wcfg.Entities = *entities
		w, err := cnprobase.GenerateWorld(wcfg)
		if err != nil {
			log.Fatalf("generate world: %v", err)
		}
		opts := cnprobase.DefaultOptions()
		opts.Workers = *workers
		opts.Shards = *shards
		res, err = cnprobase.Build(w.Corpus(), opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		view = res.Freeze()
		st := res.Report.Stats
		log.Printf("built in %v (%d workers, %d shards): %d entities, %d concepts, %d isA",
			time.Since(start).Round(time.Millisecond), res.Report.Workers, res.Report.Shards,
			st.Entities, st.Concepts, st.IsARelations)
	}

	rc := cnprobase.ServerResilience{
		MaxInFlight:   *maxInFlight,
		AdmitWait:     *admitWait,
		LookupTimeout: *queryTimeout,
		BatchTimeout:  *batchTimeout,
		HandlerDelay:  *chaosDelay,
	}
	srv := cnprobase.NewViewServerResilient(view, rc)
	httpServer := resilience.DefaultServerConfig().Server(srv.Handler())
	drain.Add("query", httpServer)

	var ing *cnprobase.Ingester
	if *ingestA != "" {
		if res == nil {
			log.Fatalf("-ingest needs the mutable build state: use -load with an evidence-carrying snapshot or the demo build (-tax cannot ingest)")
		}
		uopts := cnprobase.DefaultOptions()
		uopts.EnableNeural = false // updates skip the neural stage anyway
		uopts.Workers = *workers
		var err error
		if walLog != nil {
			ing, err = cnprobase.NewDurableIngester(res, uopts, srv, cnprobase.DurableIngestConfig{
				WAL:          walLog,
				SnapshotPath: *loadPath,
				SnapshotLSN:  snapLSN,
				CompactEvery: *compactE,
			})
		} else {
			ing, err = cnprobase.NewIngester(res, uopts, srv)
		}
		if err != nil {
			log.Fatalf("ingest: %v", err)
		}
		// A dedicated mux on a dedicated listener, like -pprof: batch
		// ingestion never shares a port with the public API.
		iln, err := net.Listen("tcp", *ingestA)
		if err != nil {
			log.Fatalf("ingest listen %s: %v", *ingestA, err)
		}
		fmt.Printf("ingesting on %s\n", iln.Addr())
		ingestServer := resilience.IngestServerConfig().Server(ing.Handler())
		drain.Add("ingest", ingestServer)
		go func() {
			if err := ingestServer.Serve(iln); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ingest server stopped: %v", err)
			}
		}()
	}

	// SIGHUP hot-swaps the serving view from the snapshot file; INT and
	// TERM drain connections and trigger the shutdown latency report.
	// shutdownDone closes only after Shutdown has finished draining, so
	// main never exits with requests still in flight.
	shutdownDone := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, os.Interrupt, syscall.SIGTERM)
	go func() {
		for sig := range sigc {
			if sig == syscall.SIGHUP {
				if *loadPath == "" {
					log.Printf("SIGHUP ignored: hot reload requires -load")
					continue
				}
				if *ingestA != "" {
					// The ingester's mutable Result is the source of
					// truth for the serving view; swapping the file's
					// view in would be silently reverted by the next
					// batch. Refuse rather than race two writers.
					log.Printf("SIGHUP ignored: -ingest owns the live state; restart the server to load a different snapshot")
					continue
				}
				fresh, err := loadView(*loadPath, *workers)
				if err != nil {
					log.Printf("SIGHUP reload failed, keeping current view: %v", err)
					continue
				}
				srv.SwapView(fresh)
				log.Printf("reloaded snapshot %s, view swapped", *loadPath)
				continue
			}
			log.Printf("%v: shutting down", sig)
			// Flip readiness first so load balancers stop routing here,
			// then give them -drain-grace to notice before the listeners
			// stop accepting; in-flight requests keep completing the
			// whole time.
			srv.Health().SetDraining()
			time.Sleep(*drainGrace)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
			for _, err := range drain.Shutdown(ctx) {
				log.Printf("shutdown: %v", err)
			}
			cancel()
			if ing != nil {
				// Flushes and fsyncs the WAL; batches still queued are
				// refused with 503, so every 200 ever sent is on disk.
				ing.Close()
			}
			close(shutdownDone)
			return
		}
	}()

	// Listen before announcing so the printed address is the bound one
	// (with ":0" the kernel picks the port; tests and scripts read it
	// back from this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	fmt.Printf("serving men2ent/getConcept/getEntity on %s\n", ln.Addr())
	if err := httpServer.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	// Serve returns as soon as Shutdown begins; wait for the drain to
	// finish so in-flight requests complete and appear in the report.
	<-shutdownDone
	for _, ep := range srv.LatencyReport() {
		log.Printf("latency %-13s calls=%-8d p50=%.3fms p99=%.3fms", ep.Endpoint, ep.Count, ep.P50Ms, ep.P99Ms)
	}
}

// loadView brings a snapshot file up as a serving view and logs its
// shape. Version-3 files are memory-mapped — the view serves straight
// off the file, so startup cost is flat in taxonomy size — while older
// files fall back to the streaming decode.
func loadView(path string, workers int) (*cnprobase.ServingView, error) {
	start := time.Now()
	how := "mapped"
	view, err := cnprobase.OpenSnapshotMapped(path)
	if errors.Is(err, cnprobase.ErrSnapshotNotMappable) {
		how = "decoded (legacy format)"
		var f *os.File
		if f, err = os.Open(path); err != nil {
			return nil, err
		}
		view, err = cnprobase.LoadSnapshotView(f, workers)
		f.Close()
	}
	if err != nil {
		return nil, err
	}
	st := view.Stats()
	log.Printf("%s snapshot in %v: %d entities, %d concepts, %d isA, %d mentions", how,
		time.Since(start).Round(time.Millisecond),
		st.Entities, st.Concepts, st.IsARelations, view.MentionCount())
	return view, nil
}
