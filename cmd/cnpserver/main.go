// Command cnpserver serves a taxonomy over HTTP with the paper's three
// APIs (Table II): men2ent, getConcept, getEntity, plus /api/stats.
//
// Usage:
//
//	cnpserver -addr :8080 -tax taxonomy.json          # serve a saved taxonomy
//	cnpserver -addr :8080 -entities 4000              # build in-memory demo world
//	cnpserver -entities 4000 -workers 8 -shards 32    # parallel demo build
//
// The demo build fans out over -workers goroutines (0 = one per CPU)
// into a -shards-way sharded taxonomy store.
//
// Mentions are indexed from entity IDs and bare titles when serving a
// saved taxonomy; the demo mode uses the pipeline's full mention index.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"cnprobase"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnpserver: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		taxPath  = flag.String("tax", "", "taxonomy JSON path (empty: build demo world)")
		entities = flag.Int("entities", 4000, "demo world size when -tax is empty")
		workers  = flag.Int("workers", 0, "demo build worker pool size (0 = one per CPU, 1 = sequential)")
		shards   = flag.Int("shards", 0, "taxonomy store shard count (0 = default)")
	)
	flag.Parse()

	var (
		tax      *cnprobase.Taxonomy
		mentions *cnprobase.MentionIndex
	)
	if *taxPath != "" {
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open %s: %v", *taxPath, err)
		}
		tax, err = cnprobase.ReadTaxonomy(f)
		f.Close()
		if err != nil {
			log.Fatalf("read taxonomy: %v", err)
		}
		mentions = taxonomy.NewMentionIndex()
		for _, n := range tax.Nodes() {
			if tax.Kind(n) == taxonomy.KindEntity {
				mentions.Add(n, n)
				if t, _ := encyclopedia.ParseEntityID(n); t != "" {
					mentions.Add(t, n)
				}
			}
		}
	} else {
		log.Printf("building demo world with %d entities...", *entities)
		start := time.Now()
		wcfg := cnprobase.DefaultWorldConfig()
		wcfg.Entities = *entities
		w, err := cnprobase.GenerateWorld(wcfg)
		if err != nil {
			log.Fatalf("generate world: %v", err)
		}
		opts := cnprobase.DefaultOptions()
		opts.Workers = *workers
		opts.Shards = *shards
		res, err := cnprobase.Build(w.Corpus(), opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		tax, mentions = res.Taxonomy, res.Mentions
		st := res.Report.Stats
		log.Printf("built in %v (%d workers, %d shards): %d entities, %d concepts, %d isA",
			time.Since(start).Round(time.Millisecond), res.Report.Workers, res.Report.Shards,
			st.Entities, st.Concepts, st.IsARelations)
	}

	srv := cnprobase.NewAPIServer(tax, mentions)
	fmt.Printf("serving men2ent/getConcept/getEntity on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
