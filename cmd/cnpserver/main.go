// Command cnpserver serves a taxonomy over HTTP with the paper's three
// APIs (Table II): men2ent, getConcept, getEntity (plus men2entBatch
// and /api/stats).
//
// Usage:
//
//	cnpserver -addr :8080 -load taxonomy.snap         # serve a binary snapshot (fastest start)
//	cnpserver -addr :8080 -tax taxonomy.json          # serve a JSON taxonomy
//	cnpserver -addr :8080 -entities 4000              # build in-memory demo world
//	cnpserver -entities 4000 -workers 8 -shards 32    # parallel demo build
//	cnpserver -addr :8080 -load taxonomy.snap -pprof localhost:6060
//
// -pprof serves net/http/pprof on its own listener (never on the API
// port); profile a live server with
// `go tool pprof http://localhost:6060/debug/pprof/profile`.
//
// -load is the production path: the snapshot (written by
// `cnprobase build -save`) decodes straight into the immutable serving
// view — the mutable build store is never materialized — so the server
// is query-ready in milliseconds. All requests are answered from that
// lock-free view.
//
// Signals:
//
//	SIGHUP           — hot reload: re-read the -load snapshot and swap
//	                   the serving view atomically; in-flight requests
//	                   finish on the old view, zero downtime. Ignored
//	                   (with a log line) when not serving a snapshot.
//	SIGINT, SIGTERM  — graceful shutdown; logs per-endpoint request
//	                   counts and p50/p99 latency before exiting.
//
// Mentions come from the snapshot's full index with -load and from the
// pipeline with the demo build; the -tax JSON path indexes entity IDs
// and bare titles only (JSON taxonomies do not carry the mention
// index).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnprobase"
	"cnprobase/internal/encyclopedia"
	"cnprobase/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cnpserver: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		loadPath = flag.String("load", "", "binary snapshot path (from `cnprobase build -save`); SIGHUP hot-reloads it")
		taxPath  = flag.String("tax", "", "taxonomy JSON path")
		entities = flag.Int("entities", 4000, "demo world size when -load and -tax are empty")
		workers  = flag.Int("workers", 0, "worker pool size for the demo build and snapshot decode (0 = one per CPU, 1 = sequential)")
		shards   = flag.Int("shards", 0, "taxonomy store shard count for the demo build (0 = default)")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	)
	flag.Parse()
	if *pprofA != "" {
		// A dedicated mux on a dedicated listener: profiling never
		// shares a port (or a handler namespace) with the public API.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofA)
		if err != nil {
			log.Fatalf("pprof listen %s: %v", *pprofA, err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				log.Printf("pprof server stopped: %v", err)
			}
		}()
	}
	if *loadPath != "" && *taxPath != "" {
		log.Fatal("-load and -tax are mutually exclusive")
	}

	var view *cnprobase.ServingView
	switch {
	case *loadPath != "":
		var err error
		if view, err = loadView(*loadPath, *workers); err != nil {
			log.Fatalf("load snapshot %s: %v", *loadPath, err)
		}
	case *taxPath != "":
		f, err := os.Open(*taxPath)
		if err != nil {
			log.Fatalf("open %s: %v", *taxPath, err)
		}
		tax, err := cnprobase.ReadTaxonomy(f)
		f.Close()
		if err != nil {
			log.Fatalf("read taxonomy: %v", err)
		}
		mentions := taxonomy.NewMentionIndex()
		for _, n := range tax.Nodes() {
			if tax.Kind(n) == taxonomy.KindEntity {
				mentions.Add(n, n)
				if t, _ := encyclopedia.ParseEntityID(n); t != "" {
					mentions.Add(t, n)
				}
			}
		}
		res := &cnprobase.Result{Taxonomy: tax, Mentions: mentions}
		view = res.Freeze()
	default:
		log.Printf("building demo world with %d entities...", *entities)
		start := time.Now()
		wcfg := cnprobase.DefaultWorldConfig()
		wcfg.Entities = *entities
		w, err := cnprobase.GenerateWorld(wcfg)
		if err != nil {
			log.Fatalf("generate world: %v", err)
		}
		opts := cnprobase.DefaultOptions()
		opts.Workers = *workers
		opts.Shards = *shards
		res, err := cnprobase.Build(w.Corpus(), opts)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		view = res.Freeze()
		st := res.Report.Stats
		log.Printf("built in %v (%d workers, %d shards): %d entities, %d concepts, %d isA",
			time.Since(start).Round(time.Millisecond), res.Report.Workers, res.Report.Shards,
			st.Entities, st.Concepts, st.IsARelations)
	}

	srv := cnprobase.NewViewServer(view)
	httpServer := &http.Server{Handler: srv.Handler()}

	// SIGHUP hot-swaps the serving view from the snapshot file; INT and
	// TERM drain connections and trigger the shutdown latency report.
	// shutdownDone closes only after Shutdown has finished draining, so
	// main never exits with requests still in flight.
	shutdownDone := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, os.Interrupt, syscall.SIGTERM)
	go func() {
		for sig := range sigc {
			if sig == syscall.SIGHUP {
				if *loadPath == "" {
					log.Printf("SIGHUP ignored: hot reload requires -load")
					continue
				}
				fresh, err := loadView(*loadPath, *workers)
				if err != nil {
					log.Printf("SIGHUP reload failed, keeping current view: %v", err)
					continue
				}
				srv.SwapView(fresh)
				log.Printf("reloaded snapshot %s, view swapped", *loadPath)
				continue
			}
			log.Printf("%v: shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = httpServer.Shutdown(ctx)
			cancel()
			close(shutdownDone)
			return
		}
	}()

	// Listen before announcing so the printed address is the bound one
	// (with ":0" the kernel picks the port; tests and scripts read it
	// back from this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	fmt.Printf("serving men2ent/getConcept/getEntity on %s\n", ln.Addr())
	if err := httpServer.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	// Serve returns as soon as Shutdown begins; wait for the drain to
	// finish so in-flight requests complete and appear in the report.
	<-shutdownDone
	for _, ep := range srv.LatencyReport() {
		log.Printf("latency %-13s calls=%-8d p50=%.3fms p99=%.3fms", ep.Endpoint, ep.Count, ep.P50Ms, ep.P99Ms)
	}
}

// loadView decodes a snapshot file straight into a serving view and
// logs its shape.
func loadView(path string, workers int) (*cnprobase.ServingView, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	view, err := cnprobase.LoadSnapshotView(f, workers)
	if err != nil {
		return nil, err
	}
	st := view.Stats()
	log.Printf("loaded snapshot in %v: %d entities, %d concepts, %d isA, %d mentions",
		time.Since(start).Round(time.Millisecond),
		st.Entities, st.Concepts, st.IsARelations, view.MentionCount())
	return view, nil
}
