// Command cnpvet is the repo's custom vet driver: it runs the
// internal/analysis suite (noallochot, viewmut, durablesync, jsonerr,
// bareserve, fieldalign) over this module.
//
// Two modes:
//
//	cnpvet [patterns...]              standalone; defaults to ./...
//	go vet -vettool=/path/to/cnpvet   vettool protocol (per-package .cfg)
//
// In either mode diagnostics print to stderr as file:line:col: name:
// message and a nonzero exit signals findings. See docs/ANALYSIS.md.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"cnprobase/internal/analysis"
)

// toolVersion is the -V=full handshake string. cmd/go hashes it into
// the vet action cache key, so bump it whenever analyzer behavior
// changes — a stale version means cached "ok" results hide new
// diagnostics.
const toolVersion = "cnpvet1.0.0"

func main() {
	args := os.Args[1:]
	// go vet probes the tool with -V=full before anything else; the
	// reply must parse as "<name> version <ver>" with a non-"devel"
	// third field to be used verbatim as the cache key.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("%s version %s\n", filepath.Base(os.Args[0]), toolVersion)
			return
		}
		// cmd/go asks for the tool's flag set (JSON) to validate
		// pass-through vet flags; this suite has none.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetCfg(args[0]))
	}
	os.Exit(runStandalone(args))
}

// runStandalone loads patterns (default ./...) from the current
// directory and runs the suite over every matched package.
func runStandalone(patterns []string) int {
	var flags, pats []string
	for _, a := range patterns {
		if strings.HasPrefix(a, "-") {
			flags = append(flags, a)
		} else {
			pats = append(pats, a)
		}
	}
	for _, f := range flags {
		if f == "-help" || f == "--help" || f == "-h" {
			usage()
			return 0
		}
		fmt.Fprintf(os.Stderr, "cnpvet: unknown flag %s\n", f)
		return 2
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnpvet:", err)
		return 1
	}
	pkgs, err := analysis.Load(dir, pats...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnpvet:", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analysis.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnpvet:", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if found {
		return 2
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cnpvet [packages]   (default ./...)")
	fmt.Fprintln(os.Stderr, "   or: go vet -vettool=$(go env GOPATH)/bin/cnpvet ./...")
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, "analyzers:")
	for _, a := range analysis.Suite() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for the
// vettool protocol (see cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes the single package described by cfgPath, printing
// diagnostics to stderr. Exit 0 = clean, nonzero = findings (cmd/go
// treats any nonzero exit as vet failure).
func runVetCfg(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnpvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cnpvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go reads VetxOutput (analysis facts) when the config asks for
	// it; this suite is fact-free, so an empty file satisfies the
	// protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cnpvet:", err)
			return 1
		}
	}
	// Dependency-only passes exist to produce facts; nothing to do.
	if cfg.VetxOnly {
		return 0
	}
	// The suite only guards this module's invariants; vetting the
	// standard library or vendored deps (go vet std) is meaningless.
	if cfg.ModulePath != "" && !strings.HasPrefix(cfg.ImportPath, cfg.ModulePath) {
		return 0
	}
	var goFiles []string
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := analysis.TypeCheck(fset, cfg.ImportPath, goFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cnpvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnpvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
