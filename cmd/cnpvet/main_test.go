package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles cnpvet into a temp dir once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cnpvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build cnpvet: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestVersionHandshake checks the -V=full reply cmd/go hashes into its
// vet action cache key: three fields, second "version", third not
// "devel".
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("cnpvet -V=full: %v", err)
	}
	f := strings.Fields(strings.TrimSpace(string(out)))
	if len(f) < 3 || f[1] != "version" || f[2] == "devel" {
		t.Fatalf("handshake %q not in 'name version ver' release form", out)
	}
}

// TestStandaloneCleanTree runs cnpvet the way a contributor would and
// expects the module to be diagnostic-free.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = moduleRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cnpvet ./... found diagnostics or failed: %v\n%s", err, out)
	}
}

// TestVettoolProtocol runs the suite through cmd/go's own vettool
// mode — the exact CI invocation — over the serving package.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go vet")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/serving/...", "./internal/wal/...")
	cmd.Dir = moduleRoot(t)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, stderr.String())
	}
}

// TestVettoolCatchesRegression reverts one satellite fix in a scratch
// copy of a durability file shape and confirms the named diagnostic
// fires — the acceptance criterion that un-fixing breaks the build.
func TestVettoolCatchesRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go vet over a scratch module")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch.example/internal/wal\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "wal.go"), `package wal

import "os"

func roll() error {
	f, err := os.Create("seg")
	if err != nil {
		return err
	}
	f.Close()
	return nil
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, ".")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a reverted fix; want durablesync diagnostic")
	}
	if !strings.Contains(stderr.String(), "durablesync") || !strings.Contains(stderr.String(), "Close error discarded") {
		t.Fatalf("missing named diagnostic, got:\n%s", stderr.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
