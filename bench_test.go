package cnprobase

// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure (DESIGN.md Section 4). Custom metrics report the
// quantities the paper reports — precision, coverage, counts — so the
// bench output doubles as the reproduction record:
//
//	go test -bench=. -benchmem
//
// Shared suites are built once per benchmark and the construction cost
// is excluded via b.ResetTimer where the benchmark measures queries.
import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"cnprobase/internal/core"
	"cnprobase/internal/experiments"
)

const benchEntities = 2500

var (
	suiteOnce sync.Once
	suiteVal  *experiments.Suite
	suiteErr  error
)

// benchSuite builds (once) the world + CN-Probase used by all
// benchmarks.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.NeuralEpochs = 1
		opts.NeuralMaxSamples = 1500
		suiteVal, suiteErr = experiments.NewSuite(benchEntities, opts)
	})
	if suiteErr != nil {
		b.Fatalf("building suite: %v", suiteErr)
	}
	return suiteVal
}

// BenchmarkPipelineEndToEnd measures the full Figure 2 pipeline:
// generation (all four sources) + verification + assembly.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	s := benchSuite(b)
	opts := core.DefaultOptions()
	opts.EnableNeural = false // keep per-iteration cost deterministic
	corpus := s.World.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.New(opts).Build(corpus)
		if err != nil {
			b.Fatal(err)
		}
		if res.Taxonomy.EdgeCount() == 0 {
			b.Fatal("empty taxonomy")
		}
	}
	b.ReportMetric(float64(corpus.Len())/b.Elapsed().Seconds()*float64(b.N), "pages/s")
}

// benchBuild runs one pipeline build at a fixed worker count, reporting
// pages/s so the sequential-vs-parallel speedup reads directly off the
// bench output:
//
//	go test -bench='BenchmarkBuildEndToEnd' -benchmem
//
// On a multi-core runner the full-width sub-benchmark should beat
// Workers1 by roughly the core count (the
// generation and verification stages dominate and parallelize); both
// produce the identical taxonomy (enforced by the determinism test in
// internal/core).
func benchBuild(b *testing.B, workers int) {
	s := benchSuite(b)
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	opts.Workers = workers
	corpus := s.World.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.New(opts).Build(corpus)
		if err != nil {
			b.Fatal(err)
		}
		if res.Taxonomy.EdgeCount() == 0 {
			b.Fatal("empty taxonomy")
		}
	}
	b.ReportMetric(float64(corpus.Len())/b.Elapsed().Seconds()*float64(b.N), "pages/s")
}

// BenchmarkBuildEndToEnd is the build-throughput harness: the complete
// pipeline (generation + verification + assembly, neural off) at the
// sequential reference width and at full width, reporting pages/s.
// Together with BenchmarkSegmentThroughput (internal/segment) and
// BenchmarkTrieMatchesFrom (internal/trie) it pins the build-side perf
// trajectory; cmd/experiments -bench-build emits the same quantities
// as BENCH_BUILD.json for the CI artifact.
// (BenchmarkBuildEndToEnd subsumes the former
// BenchmarkPipelineBuildSequential/Parallel pair, which measured the
// same two builds under different names — CI runs every benchmark
// once per push, so duplicates cost real wall-clock.)
func BenchmarkBuildEndToEnd(b *testing.B) {
	b.Run("Workers1", func(b *testing.B) { benchBuild(b, 1) })
	b.Run(fmt.Sprintf("Workers%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchBuild(b, runtime.GOMAXPROCS(0))
	})
}

// BenchmarkShardedTaxonomyConcurrentQueries measures the serving-path
// win of the sharded store: hypernym/hyponym lookups from GOMAXPROCS
// goroutines at once, the access pattern behind Table II's 82M calls.
func BenchmarkShardedTaxonomyConcurrentQueries(b *testing.B) {
	s := benchSuite(b)
	tax := s.Result.Taxonomy
	nodes := tax.Nodes()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			n := nodes[i%len(nodes)]
			_ = tax.Hypernyms(n)
			_ = tax.Hyponyms(n, 50)
			i++
		}
	})
}

// BenchmarkTableI regenerates Table I: all four taxonomies and their
// sampled precision.
func BenchmarkTableI(b *testing.B) {
	s := benchSuite(b)
	var rows []struct {
		name string
		prec float64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, r := s.Table1()
		rows = rows[:0]
		for _, row := range r {
			rows = append(rows, struct {
				name string
				prec float64
			}{row.Name, row.Precision})
		}
	}
	b.StopTimer()
	_, r := s.Table1()
	for _, row := range r {
		b.ReportMetric(row.Precision*100, fmt.Sprintf("prec-%%-%s", shortName(row.Name)))
	}
}

func shortName(n string) string {
	switch n {
	case "Chinese WikiTaxonomy":
		return "wikitax"
	case "Bigcilin":
		return "bigcilin"
	case "Probase-Tran":
		return "probasetran"
	default:
		return "cnprobase"
	}
}

// BenchmarkTableII runs the API workload mix over HTTP and reports the
// observed call counts (Table II shape).
func BenchmarkTableII(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var calls float64
	for i := 0; i < b.N; i++ {
		_, stats, err := s.Table2(2000)
		if err != nil {
			b.Fatal(err)
		}
		calls = float64(stats.Men2Ent + stats.GetConcept + stats.GetEntity)
	}
	b.ReportMetric(calls/b.Elapsed().Seconds()*float64(b.N), "calls/s")
}

// BenchmarkFigure3Separation measures the separation algorithm itself
// (Figure 3): brackets per second through segmentation + PMI trees.
func BenchmarkFigure3Separation(b *testing.B) {
	s := benchSuite(b)
	brackets := make([]string, 0, 1024)
	for _, p := range s.World.Corpus().Pages {
		if p.Bracket != "" {
			brackets = append(brackets, p.Bracket)
		}
	}
	if len(brackets) == 0 {
		b.Fatal("no brackets")
	}
	demo := s.SeparationDemo(brackets[:1]) // warm the path
	_ = demo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SeparationDemo([]string{brackets[i%len(brackets)]})
	}
}

// BenchmarkPerSource regenerates the in-text per-source precision
// numbers (bracket 96.2%, tag 97.4% in the paper).
func BenchmarkPerSource(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.SourceRow
	for i := 0; i < b.N; i++ {
		_, rows = s.PerSource()
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.PrecisionKept*100, "prec-%-"+r.Source.String())
	}
}

// BenchmarkPredicateDiscovery regenerates E6 (341 candidates → 12
// curated in the paper) by re-running the pipeline's discovery stage.
func BenchmarkPredicateDiscovery(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var nCand, nSel int
	for i := 0; i < b.N; i++ {
		_, cands, sel := s.Predicates()
		nCand, nSel = len(cands), len(sel)
	}
	b.StopTimer()
	b.ReportMetric(float64(nCand), "candidates")
	b.ReportMetric(float64(nSel), "curated")
}

// BenchmarkQACoverage regenerates E5: coverage of the taxonomy over the
// generated question set (91.68% over 23,472 questions in the paper).
func BenchmarkQACoverage(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var cov, avg float64
	for i := 0; i < b.N; i++ {
		_, res := s.QA(23472)
		cov, avg = res.Coverage(), res.AvgConceptsPerEntity
	}
	b.StopTimer()
	b.ReportMetric(cov*100, "coverage-%")
	b.ReportMetric(avg, "concepts/entity")
}

// BenchmarkNeuralGeneration regenerates E7: the copy-mechanism
// ablation (exact-match accuracy with and without copying).
func BenchmarkNeuralGeneration(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var res experiments.NeuralResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = s.Neural(800, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.AccCopy*100, "acc-copy-%")
	b.ReportMetric(res.AccNoCopy*100, "acc-nocopy-%")
}

// BenchmarkAblationVerification regenerates A1: the pipeline with each
// verification strategy toggled (the design-choice ablation DESIGN.md
// calls out).
func BenchmarkAblationVerification(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = s.Ablation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Precision*100, "prec-%-"+sanitize(r.Name))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkTaxonomyQueries measures the deployed-API query path
// (getConcept/getEntity) against the built taxonomy — the serving cost
// behind Table II's 82M calls.
func BenchmarkTaxonomyQueries(b *testing.B) {
	s := benchSuite(b)
	tax := s.Result.Taxonomy
	nodes := tax.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := nodes[i%len(nodes)]
		_ = tax.Hypernyms(n)
		_ = tax.Hyponyms(n, 50)
	}
}

// BenchmarkQueryStoreVsView is the build/serve-split acceptance
// benchmark: the same getConcept/getEntity/men2ent lookups (plus the
// typicality-ranked getConcept variant) against the mutable sharded
// store and against the frozen serving view. The view side must show
// the ≥2x single-thread speedup with ~0 allocs/op the refactor
// promises — the store pays a lock, a map probe and a defensive copy
// per query (and a full score-sort per ranked query); the view pays a
// map probe and returns shared subslices of precomputed arrays.
func BenchmarkQueryStoreVsView(b *testing.B) {
	s := benchSuite(b)
	tax, mentions := s.Result.Taxonomy, s.Result.Mentions
	view := s.Result.Freeze()
	nodes := tax.Nodes()
	titles := make([]string, 0, 1024)
	for _, p := range s.World.Corpus().Pages {
		titles = append(titles, p.Title)
	}
	run := func(name string, fn func(i int)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
	}
	run("getConcept/store", func(i int) { _ = tax.Hypernyms(nodes[i%len(nodes)]) })
	run("getConcept/view", func(i int) { _ = view.Hypernyms(nodes[i%len(nodes)]) })
	run("getConceptRanked/store", func(i int) { _ = tax.RankedHypernyms(nodes[i%len(nodes)], 0) })
	run("getConceptRanked/view", func(i int) { _ = view.RankedHypernyms(nodes[i%len(nodes)], 0) })
	run("getEntity/store", func(i int) { _ = tax.Hyponyms(nodes[i%len(nodes)], 50) })
	run("getEntity/view", func(i int) { _ = view.Hyponyms(nodes[i%len(nodes)], 50) })
	run("men2ent/store", func(i int) { _ = mentions.Lookup(titles[i%len(titles)]) })
	run("men2ent/view", func(i int) { _ = view.Lookup(titles[i%len(titles)]) })
}

// BenchmarkParallelQPSStoreVsView measures the Table II access
// pattern — the three APIs in the paper's observed mix — from
// GOMAXPROCS goroutines at once. The store serializes readers on
// per-shard RWMutexes; the view is lock-free, so this is where the
// serving split pays at scale.
func BenchmarkParallelQPSStoreVsView(b *testing.B) {
	s := benchSuite(b)
	tax, mentions := s.Result.Taxonomy, s.Result.Mentions
	view := s.Result.Freeze()
	nodes := tax.Nodes()
	mix := func(b *testing.B, men2ent func(string) []string, hypers func(string) []string, hypos func(string, int) []string) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				n := nodes[i%len(nodes)]
				switch i % 10 { // ≈ the paper's 52.6 : 16.6 : 30.9 call mix
				case 0, 1, 2, 3, 4:
					_ = men2ent(n)
				case 5, 6:
					_ = hypers(n)
				default:
					_ = hypos(n, 50)
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("store", func(b *testing.B) {
		mix(b, mentions.Lookup, tax.Hypernyms, tax.Hyponyms)
	})
	b.Run("view", func(b *testing.B) {
		mix(b, view.Lookup, view.Hypernyms, view.Hyponyms)
	})
}

// BenchmarkSnapshotLoadView measures the snapshot → serving-view
// direct decode (no mutable store, no Finalize), the cnpserver -load
// startup path.
func BenchmarkSnapshotLoadView(b *testing.B) {
	data := snapshotBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view, err := LoadSnapshotView(bytes.NewReader(data), 0)
		if err != nil {
			b.Fatal(err)
		}
		if view.EdgeCount() == 0 {
			b.Fatal("empty view")
		}
	}
}

// BenchmarkMentionLookup measures men2ent resolution.
func BenchmarkMentionLookup(b *testing.B) {
	s := benchSuite(b)
	pages := s.World.Corpus().Pages
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Result.Mentions.Lookup(pages[i%len(pages)].Title)
	}
}

// BenchmarkAblationSeparation compares the PMI separation algorithm
// against the naive suffix heuristic on bracket extraction (the A2
// design-choice ablation).
func BenchmarkAblationSeparation(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.SeparationVsSuffixRow
	for i := 0; i < b.N; i++ {
		_, rows = s.SeparationVsSuffix()
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Precision*100, "prec-%-"+sanitize(r.Name))
	}
}

// BenchmarkConceptualize measures the short-text conceptualization
// application layer (mention finding + disambiguation + concept
// aggregation per text).
func BenchmarkConceptualize(b *testing.B) {
	s := benchSuite(b)
	engine := NewConceptualizer(s.Result.Taxonomy, s.Result.Mentions)
	texts := make([]string, 0, 256)
	for _, e := range s.World.Entities[:256] {
		texts = append(texts, e.Title+"的代表作品有哪些？")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.Conceptualize(texts[i%len(texts)])
	}
}

// snapshotBytes saves the suite's serving state once, for the
// snapshot benchmarks.
func snapshotBytes(b *testing.B) []byte {
	b.Helper()
	s := benchSuite(b)
	var buf bytes.Buffer
	if err := SaveSnapshot(&buf, s.Result); err != nil {
		b.Fatalf("SaveSnapshot: %v", err)
	}
	return buf.Bytes()
}

// BenchmarkSnapshotSave measures writing the binary serving snapshot
// (stripe-parallel encode + CRC); MB/s reads off the -benchmem output.
func BenchmarkSnapshotSave(b *testing.B) {
	s := benchSuite(b)
	size := len(snapshotBytes(b))
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SaveSnapshot(io.Discard, s.Result); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures reassembling the full serving state —
// sharded taxonomy, merged indexes, mention index — from a snapshot.
func BenchmarkSnapshotLoad(b *testing.B) {
	data := snapshotBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if res.Taxonomy.EdgeCount() == 0 {
			b.Fatal("empty taxonomy")
		}
	}
}

// BenchmarkLoadVsRebuild is the serving-startup comparison the
// snapshot exists for: sub-benchmark Load starts a server from the
// snapshot, Rebuild re-runs the generation + verification pipeline
// (neural stage off, its cheapest configuration) — the only option
// before snapshots existed. The ns/op ratio is the startup speedup.
func BenchmarkLoadVsRebuild(b *testing.B) {
	s := benchSuite(b)
	data := snapshotBytes(b)
	b.Run("Load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := LoadSnapshot(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if res.Taxonomy.EdgeCount() == 0 {
				b.Fatal("empty taxonomy")
			}
		}
	})
	b.Run("Rebuild", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.EnableNeural = false
		corpus := s.World.Corpus()
		for i := 0; i < b.N; i++ {
			res, err := core.New(opts).Build(corpus)
			if err != nil {
				b.Fatal(err)
			}
			if res.Taxonomy.EdgeCount() == 0 {
				b.Fatal("empty taxonomy")
			}
		}
	})
}

// BenchmarkIncrementalUpdate measures the never-ending-extraction mode:
// extending a built taxonomy with a fresh crawl batch.
func BenchmarkIncrementalUpdate(b *testing.B) {
	s := benchSuite(b)
	corpus := s.World.Corpus()
	half := corpus.Len() / 2
	opts := core.DefaultOptions()
	opts.EnableNeural = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		first := &Corpus{Pages: corpus.Pages[:half]}
		delta := &Corpus{Pages: corpus.Pages[half:]}
		p := core.New(opts)
		res, err := p.Build(first)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := p.Update(res, delta); err != nil {
			b.Fatal(err)
		}
	}
}
